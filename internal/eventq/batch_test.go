package eventq

import (
	"math/rand"
	"testing"

	"abm/internal/units"
)

// drain pops every event, returning the (time, arg) sequence.
func drain(q *Queue) (times []units.Time, args []int) {
	for {
		_, arg, tm, ok := q.Pop()
		if !ok {
			return times, args
		}
		times = append(times, tm)
		args = append(args, arg.(int))
	}
}

// TestPushBatchOrder verifies that a batch executes in slice order
// among simultaneous events: batch index is the tie-break.
func TestPushBatchOrder(t *testing.T) {
	var q Queue
	nop := func(any) {}
	items := []Item{
		{Time: 5, Fn: nop, Arg: 0},
		{Time: 3, Fn: nop, Arg: 1},
		{Time: 5, Fn: nop, Arg: 2},
		{Time: 3, Fn: nop, Arg: 3},
		{Time: 4, Fn: nop, Arg: 4},
	}
	q.PushBatch(items)
	times, args := drain(&q)
	wantT := []units.Time{3, 3, 4, 5, 5}
	wantA := []int{1, 3, 4, 0, 2}
	for i := range wantT {
		if times[i] != wantT[i] || args[i] != wantA[i] {
			t.Fatalf("pop %d: got (%v,%d), want (%v,%d)", i, times[i], args[i], wantT[i], wantA[i])
		}
	}
}

// TestPushBatchMatchesPushLoop cross-checks both PushBatch code paths
// (per-item sift and bottom-up heapify) against a loop of PushArg calls
// on randomized workloads: the pop sequences must be identical.
func TestPushBatchMatchesPushLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		pre := rng.Intn(200)   // events already in the calendar
		k := 1 + rng.Intn(300) // batch size; sometimes >> pre (heapify path)
		var batched, looped Queue
		nop := func(any) {}
		for i := 0; i < pre; i++ {
			tm := units.Time(rng.Intn(50))
			batched.PushArg(tm, nop, 1000+i)
			looped.PushArg(tm, nop, 1000+i)
		}
		items := make([]Item, k)
		for i := range items {
			items[i] = Item{Time: units.Time(rng.Intn(50)), Fn: nop, Arg: i}
		}
		batched.PushBatch(items)
		for i := range items {
			looped.PushArg(items[i].Time, items[i].Fn, items[i].Arg)
		}
		bt, ba := drain(&batched)
		lt, la := drain(&looped)
		if len(bt) != len(lt) {
			t.Fatalf("trial %d: length mismatch %d vs %d", trial, len(bt), len(lt))
		}
		for i := range bt {
			if bt[i] != lt[i] || ba[i] != la[i] {
				t.Fatalf("trial %d pop %d: batch (%v,%d) vs loop (%v,%d)",
					trial, i, bt[i], ba[i], lt[i], la[i])
			}
		}
	}
}

// TestPushBatchReusesFreeSlots checks the heapify path recycles arena
// slots like Push does (no arena growth when capacity suffices).
func TestPushBatchEmpty(t *testing.T) {
	var q Queue
	q.PushBatch(nil)
	q.PushBatch([]Item{})
	if q.Len() != 0 {
		t.Fatalf("empty batch changed queue length: %d", q.Len())
	}
}

// benchBatch pushes k-item batches against a standing calendar of n
// events, popping k events back per round to stay in steady state.
func benchBatch(b *testing.B, n, k int, batch bool) {
	var q Queue
	nop := func(any) {}
	rng := rand.New(rand.NewSource(1))
	now := units.Time(0)
	for i := 0; i < n; i++ {
		q.PushArg(now+units.Time(rng.Intn(1000)), nop, nil)
	}
	items := make([]Item, k)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range items {
			items[j] = Item{Time: now + units.Time(100+j), Fn: nop, Arg: nil}
		}
		if batch {
			q.PushBatch(items)
		} else {
			for j := range items {
				q.PushArg(items[j].Time, items[j].Fn, items[j].Arg)
			}
		}
		for j := 0; j < k; j++ {
			_, _, tm, ok := q.Pop()
			if !ok {
				b.Fatal("queue drained")
			}
			now = tm
		}
	}
}

// The barrier-injection shape: a handful of cross-window deliveries
// landing in a busy calendar (sift path)...
func BenchmarkPushBatchSmallIntoBusy(b *testing.B) { benchBatch(b, 4096, 16, true) }
func BenchmarkPushLoopSmallIntoBusy(b *testing.B)  { benchBatch(b, 4096, 16, false) }

// ...and a large merge into a mostly-drained calendar (heapify path).
func BenchmarkPushBatchLargeIntoIdle(b *testing.B) { benchBatch(b, 64, 512, true) }
func BenchmarkPushLoopLargeIntoIdle(b *testing.B)  { benchBatch(b, 64, 512, false) }
