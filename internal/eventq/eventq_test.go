package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"abm/internal/units"
)

// popTime drains one live event and returns its time.
func popTime(t *testing.T, q *Queue) (units.Time, bool) {
	t.Helper()
	_, _, tm, ok := q.Pop()
	return tm, ok
}

func TestPopOrder(t *testing.T) {
	var q Queue
	times := []units.Time{5, 1, 3, 2, 4}
	for _, tm := range times {
		q.Push(tm, nil)
	}
	var got []units.Time
	for {
		tm, ok := popTime(t, &q)
		if !ok {
			break
		}
		got = append(got, tm)
	}
	want := []units.Time{1, 2, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestTieBreakFIFO(t *testing.T) {
	var q Queue
	order := make([]int, 0, 3)
	for i := 0; i < 3; i++ {
		i := i
		q.Push(7, func() { order = append(order, i) })
	}
	for {
		fn, arg, _, ok := q.Pop()
		if !ok {
			break
		}
		fn(arg)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of order: %v", order)
		}
	}
}

func TestCancel(t *testing.T) {
	var q Queue
	a := q.Push(1, nil)
	b := q.Push(2, nil)
	a.Cancel()
	if !a.Canceled() {
		t.Fatal("Canceled() should be true")
	}
	if tm, ok := popTime(t, &q); !ok || tm != 2 {
		t.Fatalf("expected b (t=2) after canceling a, got t=%v ok=%v", tm, ok)
	}
	if b.Scheduled() {
		t.Fatal("popped event must not be scheduled")
	}
	if _, ok := popTime(t, &q); ok {
		t.Fatal("queue should be drained")
	}
}

func TestCancelAllThenPop(t *testing.T) {
	var q Queue
	for i := 0; i < 10; i++ {
		q.Push(units.Time(i), nil).Cancel()
	}
	if _, ok := popTime(t, &q); ok {
		t.Fatal("all events canceled, Pop must return nothing")
	}
	if _, ok := q.PeekTime(); ok {
		t.Fatal("all events canceled, PeekTime must return nothing")
	}
}

func TestPeekTime(t *testing.T) {
	var q Queue
	if _, ok := q.PeekTime(); ok {
		t.Fatal("empty queue PeekTime must report nothing")
	}
	q.Push(5, nil)
	b := q.Push(1, nil)
	if tm, ok := q.PeekTime(); !ok || tm != 1 {
		t.Fatalf("PeekTime = %v/%v, want earliest", tm, ok)
	}
	b.Cancel()
	if tm, ok := q.PeekTime(); !ok || tm != 5 {
		t.Fatal("PeekTime should skip canceled head")
	}
	if q.Len() != 1 {
		t.Fatalf("canceled head should be discarded by PeekTime, len=%d", q.Len())
	}
}

func TestScheduled(t *testing.T) {
	var q Queue
	e := q.Push(1, nil)
	if !e.Scheduled() {
		t.Fatal("freshly pushed event must be scheduled")
	}
	q.Pop()
	if e.Scheduled() {
		t.Fatal("popped event must not be scheduled")
	}
}

// TestStaleHandleNoOp pins the generation-counter contract: after an
// event fires and its slot is reused, the old handle must neither
// cancel nor observe the new occupant.
func TestStaleHandleNoOp(t *testing.T) {
	var q Queue
	old := q.Push(1, nil)
	q.Pop() // fires; slot goes to the free list
	fresh := q.Push(2, nil)
	old.Cancel() // stale: must not touch the reused slot
	if old.Scheduled() || old.Canceled() {
		t.Fatal("stale handle must report neither scheduled nor canceled")
	}
	if !fresh.Scheduled() {
		t.Fatal("stale Cancel leaked onto the reused slot")
	}
	if tm, ok := popTime(t, &q); !ok || tm != 2 {
		t.Fatalf("fresh event lost: t=%v ok=%v", tm, ok)
	}
}

// TestZeroHandle pins that the zero Event is inert.
func TestZeroHandle(t *testing.T) {
	var e Event
	e.Cancel()
	if e.Scheduled() || e.Canceled() || e.Time() != 0 {
		t.Fatal("zero handle must be inert")
	}
}

// Property: popping returns events in nondecreasing time order for any
// random insertion sequence.
func TestHeapOrderProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var q Queue
		count := int(n%64) + 1
		in := make([]units.Time, count)
		for i := range in {
			in[i] = units.Time(rng.Int63n(1000))
			q.Push(in[i], nil)
		}
		sort.Slice(in, func(i, j int) bool { return in[i] < in[j] })
		for i := 0; i < count; i++ {
			tm, ok := (&q).PopTimeForTest()
			if !ok || tm != in[i] {
				return false
			}
		}
		_, ok := (&q).PopTimeForTest()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// PopTimeForTest drains one live event and returns its time.
func (q *Queue) PopTimeForTest() (units.Time, bool) {
	_, _, tm, ok := q.Pop()
	return tm, ok
}

// Property: canceling a random subset never disturbs the order of the rest.
func TestCancelSubsetProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var q Queue
		count := int(n%64) + 2
		events := make([]Event, count)
		times := make([]units.Time, count)
		var keep []units.Time
		for i := range events {
			times[i] = units.Time(rng.Int63n(100))
			events[i] = q.Push(times[i], nil)
		}
		for i, e := range events {
			if rng.Intn(2) == 0 {
				e.Cancel()
			} else {
				keep = append(keep, times[i])
			}
		}
		sort.Slice(keep, func(i, j int) bool { return keep[i] < keep[j] })
		for _, want := range keep {
			tm, ok := q.PopTimeForTest()
			if !ok || tm != want {
				return false
			}
		}
		_, ok := q.PopTimeForTest()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPushPop(b *testing.B) {
	var q Queue
	rng := rand.New(rand.NewSource(42))
	times := make([]units.Time, 1024)
	for i := range times {
		times[i] = units.Time(rng.Int63n(1 << 30))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(times[i%len(times)], nil)
		if q.Len() > 512 {
			q.Pop()
		}
	}
}

// BenchmarkEventQueue measures the steady-state Push/Pop cycle at a
// simulator-realistic calendar depth, with PushArg (the hot path the
// packet pipeline uses). Expected: 0 allocs/op once warm.
func BenchmarkEventQueue(b *testing.B) {
	var q Queue
	rng := rand.New(rand.NewSource(42))
	times := make([]units.Time, 4096)
	for i := range times {
		times[i] = units.Time(rng.Int63n(1 << 40))
	}
	nop := func(any) {}
	// Warm to steady depth so arena/heap growth is out of the timed loop.
	for i := 0; i < 2048; i++ {
		q.PushArg(times[i%len(times)], nop, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.PushArg(times[i%len(times)], nop, nil)
		q.Pop()
	}
}

// TestLanePopOrderAcrossStructures interleaves lane and heap events
// with colliding times: pops must come back in global (time, push
// order), no matter which structure holds each event.
func TestLanePopOrderAcrossStructures(t *testing.T) {
	var q Queue
	ln := q.NewLane()
	var got []int
	rec := func(id int) func() { return func() { got = append(got, id) } }
	q.PushLane(ln, 10, rec(0)) // lane
	q.Push(10, rec(1))         // heap, same time: later push pops second
	q.PushLane(ln, 10, rec(2)) // lane, same time again
	q.Push(5, rec(3))          // heap, earlier
	q.PushLane(ln, 20, rec(4))
	for {
		fn, arg, _, ok := q.Pop()
		if !ok {
			break
		}
		fn(arg)
	}
	want := []int{3, 0, 1, 2, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

// TestLaneOutOfOrderFallback pushes a time below the lane tail; it must
// divert to the heap and still pop in correct global order.
func TestLaneOutOfOrderFallback(t *testing.T) {
	var q Queue
	ln := q.NewLane()
	var got []units.Time
	q.PushLane(ln, 50, func() { got = append(got, 50) })
	ev := q.PushLane(ln, 30, func() { got = append(got, 30) }) // below tail -> heap
	if !ev.Scheduled() {
		t.Fatal("fallback event lost")
	}
	q.PushLane(ln, 50, func() { got = append(got, 51) })
	for {
		fn, arg, _, ok := q.Pop()
		if !ok {
			break
		}
		fn(arg)
	}
	if len(got) != 3 || got[0] != 30 || got[1] != 50 || got[2] != 51 {
		t.Fatalf("pop order %v, want [30 50 51]", got)
	}
}

// TestLaneCancelHead cancels a lane's head; the lane's later events
// must still pop, and Len must account for the lazy discard.
func TestLaneCancelHead(t *testing.T) {
	var q Queue
	ln := q.NewLane()
	fired := false
	ev := q.PushLane(ln, 1, func() { t.Fatal("canceled event fired") })
	q.PushLane(ln, 2, func() { fired = true })
	ev.Cancel()
	if q.Len() != 2 {
		t.Fatalf("Len()=%d before discard, want 2", q.Len())
	}
	if tm, ok := q.PeekTime(); !ok || tm != 2 {
		t.Fatalf("PeekTime=(%v,%v), want (2,true)", tm, ok)
	}
	if q.Len() != 1 {
		t.Fatalf("Len()=%d after peek-discard, want 1", q.Len())
	}
	fn, arg, _, ok := q.Pop()
	if !ok {
		t.Fatal("pop failed")
	}
	fn(arg)
	if !fired {
		t.Fatal("surviving lane event did not fire")
	}
}

// TestPopLEBounds checks the fused bounded pops against both
// structures: events at the bound pop under PopLE but not PopLT.
func TestPopLEBounds(t *testing.T) {
	var q Queue
	ln := q.NewLane()
	q.PushLane(ln, 10, func() {})
	q.Push(20, func() {})
	if _, _, _, ok := q.PopLT(10); ok {
		t.Fatal("PopLT(10) popped an event at the bound")
	}
	if _, _, tm, ok := q.PopLE(10); !ok || tm != 10 {
		t.Fatalf("PopLE(10) = (%v,%v), want (10,true)", tm, ok)
	}
	if _, _, _, ok := q.PopLE(19); ok {
		t.Fatal("PopLE(19) popped the t=20 event")
	}
	if _, _, tm, ok := q.PopLT(21); !ok || tm != 20 {
		t.Fatalf("PopLT(21) = (%v,%v), want (20,true)", tm, ok)
	}
}

// TestLaneRecycle releases a lane with residual events and reuses the
// ID: residual events drain in order and new pushes stay correct.
func TestLaneRecycle(t *testing.T) {
	var q Queue
	ln := q.NewLane()
	var got []units.Time
	q.PushLane(ln, 5, func() { got = append(got, 5) })
	q.PushLane(ln, 9, func() { got = append(got, 9) })
	q.ReleaseLane(ln)
	ln2 := q.NewLane()
	if ln2 != ln {
		t.Fatalf("recycled lane ID %d, want %d", ln2, ln)
	}
	// Reuse while residual events are queued: below-tail goes to the
	// heap, at-or-above-tail extends the ring; order must hold.
	q.PushLane(ln2, 7, func() { got = append(got, 7) })
	q.PushLane(ln2, 9, func() { got = append(got, 91) })
	for {
		fn, arg, _, ok := q.Pop()
		if !ok {
			break
		}
		fn(arg)
	}
	want := []units.Time{5, 7, 9, 91}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

// BenchmarkLanePushPop measures the steady-state lane path: one push
// and one pop per iteration against a populated queue spread over many
// lanes, the shape the packet pipeline produces.
func BenchmarkLanePushPop(b *testing.B) {
	var q Queue
	const lanes = 64
	ids := make([]LaneID, lanes)
	for i := range ids {
		ids[i] = q.NewLane()
	}
	fn := func(any) {}
	var tm units.Time
	for i := 0; i < 2048; i++ {
		tm += 3
		q.PushLaneArg(ids[i%lanes], tm, fn, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm += 3
		q.PushLaneArg(ids[i%lanes], tm, fn, nil)
		q.Pop()
	}
}
