package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"abm/internal/units"
)

func TestPopOrder(t *testing.T) {
	var q Queue
	times := []units.Time{5, 1, 3, 2, 4}
	for _, tm := range times {
		q.Push(tm, nil)
	}
	var got []units.Time
	for e := q.Pop(); e != nil; e = q.Pop() {
		got = append(got, e.Time)
	}
	want := []units.Time{1, 2, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestTieBreakFIFO(t *testing.T) {
	var q Queue
	order := make([]int, 0, 3)
	for i := 0; i < 3; i++ {
		i := i
		q.Push(7, func() { order = append(order, i) })
	}
	for e := q.Pop(); e != nil; e = q.Pop() {
		e.Fn()
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of order: %v", order)
		}
	}
}

func TestCancel(t *testing.T) {
	var q Queue
	a := q.Push(1, nil)
	b := q.Push(2, nil)
	a.Cancel()
	if !a.Canceled() {
		t.Fatal("Canceled() should be true")
	}
	if got := q.Pop(); got != b {
		t.Fatalf("expected b after canceling a, got %+v", got)
	}
	if q.Pop() != nil {
		t.Fatal("queue should be drained")
	}
}

func TestCancelAllThenPop(t *testing.T) {
	var q Queue
	for i := 0; i < 10; i++ {
		q.Push(units.Time(i), nil).Cancel()
	}
	if q.Pop() != nil {
		t.Fatal("all events canceled, Pop must return nil")
	}
	if q.Peek() != nil {
		t.Fatal("all events canceled, Peek must return nil")
	}
}

func TestPeek(t *testing.T) {
	var q Queue
	if q.Peek() != nil {
		t.Fatal("empty queue Peek must be nil")
	}
	a := q.Push(5, nil)
	b := q.Push(1, nil)
	if got := q.Peek(); got != b {
		t.Fatalf("Peek = %+v, want earliest", got)
	}
	b.Cancel()
	if got := q.Peek(); got != a {
		t.Fatal("Peek should skip canceled head")
	}
	if q.Len() != 1 {
		t.Fatalf("canceled head should be discarded by Peek, len=%d", q.Len())
	}
}

func TestScheduled(t *testing.T) {
	var q Queue
	e := q.Push(1, nil)
	if !e.Scheduled() {
		t.Fatal("freshly pushed event must be scheduled")
	}
	q.Pop()
	if e.Scheduled() {
		t.Fatal("popped event must not be scheduled")
	}
}

// Property: popping returns events in nondecreasing time order for any
// random insertion sequence.
func TestHeapOrderProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var q Queue
		count := int(n%64) + 1
		in := make([]units.Time, count)
		for i := range in {
			in[i] = units.Time(rng.Int63n(1000))
			q.Push(in[i], nil)
		}
		sort.Slice(in, func(i, j int) bool { return in[i] < in[j] })
		for i := 0; i < count; i++ {
			e := q.Pop()
			if e == nil || e.Time != in[i] {
				return false
			}
		}
		return q.Pop() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: canceling a random subset never disturbs the order of the rest.
func TestCancelSubsetProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var q Queue
		count := int(n%64) + 2
		events := make([]*Event, count)
		var keep []units.Time
		for i := range events {
			tm := units.Time(rng.Int63n(100))
			events[i] = q.Push(tm, nil)
		}
		for _, e := range events {
			if rng.Intn(2) == 0 {
				e.Cancel()
			} else {
				keep = append(keep, e.Time)
			}
		}
		sort.Slice(keep, func(i, j int) bool { return keep[i] < keep[j] })
		for _, want := range keep {
			e := q.Pop()
			if e == nil || e.Time != want {
				return false
			}
		}
		return q.Pop() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPushPop(b *testing.B) {
	var q Queue
	rng := rand.New(rand.NewSource(42))
	times := make([]units.Time, 1024)
	for i := range times {
		times[i] = units.Time(rng.Int63n(1 << 30))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(times[i%len(times)], nil)
		if q.Len() > 512 {
			q.Pop()
		}
	}
}
