// Command sweep drives a multi-seed experiment grid through the
// internal/runner pool: it expands a plan (flags or a JSON plan file)
// into the cross product of buffer-management schemes, congestion
// controls, loads, request sizes and alphas, replicated across derived
// seeds, runs the jobs on parallel fault-isolated workers, persists one
// JSON record per job under -out, and aggregates replications into
// mean/p95/p99 with bootstrap confidence intervals.
//
// Per-job seeds derive from the plan seed and the job's index, so a
// sweep's results are identical at any -workers value, and a re-run
// with -resume skips every job the manifest already records as
// complete.
//
// Profiling: -cpuprofile, -memprofile and -trace capture the run for
// performance work on the simulator core (see DESIGN.md, "Event engine
// internals").
//
// Scenario mode starts every job from a declarative scenario file and
// varies fields by dotted path instead of the fixed cell axes:
//
//	sweep -scenario scenarios/oversub-2to1.json \
//	      -vary switch.bm=DT,ABM -vary workload.load=0.4,0.8 -reps 3
//
// With -connect the process instead joins a cmd/sweepd coordinator as
// a worker: the coordinator owns the grid, this process just executes
// leased jobs on the same code path.
//
// Examples:
//
//	sweep -bms DT,ABM -ccs cubic -loads 0.2,0.4,0.6,0.8 -reps 3 -out results/sweep
//	sweep -plan plan.json -out results/sweep -workers 8
//	sweep -plan plan.json -out results/sweep -resume
//	sweep -connect 127.0.0.1:7077 -workers 4
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"abm/internal/experiments"
	"abm/internal/obs"
	"abm/internal/prof"
	"abm/internal/runner"
	"abm/internal/sweepd"
)

func main() { os.Exit(run()) }

// run is main's body with normal control flow, so deferred profile
// writers and the store close fire on every exit path.
func run() int {
	var (
		planFile = flag.String("plan", "", "JSON plan file (see internal/experiments.Grid); flags below override nothing when set")
		name     = flag.String("name", "sweep", "sweep name (prefixes job IDs)")
		scale    = flag.String("scale", "small", "fabric scale: small, medium, paper")
		seed     = flag.Int64("seed", 1, "plan seed; per-job seeds derive from it")
		reps     = flag.Int("reps", 1, "seed replications per configuration")
		bms      = flag.String("bms", "ABM", "comma-separated buffer-management schemes")
		ccs      = flag.String("ccs", "cubic", "comma-separated congestion-control algorithms")
		loads    = flag.String("loads", "0.4", "comma-separated web-search loads")
		requests = flag.String("requests", "0.3", "comma-separated incast request fractions of the buffer")
		alphas   = flag.String("alphas", "", "comma-separated alphas (empty = scheme default)")
		qpp      = flag.Int("queues", 0, "queues per port (0 = default)")
		workload = flag.String("workload", "", "background workload: websearch (default), datamining")
		duration = flag.Float64("duration-ms", 0, "traffic duration override in milliseconds (0 = scale default)")
		scnFile  = flag.String("scenario", "", "base scenario JSON file: jobs start from it and -vary axes mutate it (the cell axes above are ignored)")
		vary     varyAxes

		connect     = flag.String("connect", "", "join a sweepd coordinator at this address as a worker instead of running a local sweep (uses -workers slots; all grid flags are ignored)")
		out         = flag.String("out", "sweep-results", "result store directory (jobs/, manifest.jsonl, aggregate.json)")
		workers     = flag.Int("workers", runtime.NumCPU(), "parallel workers")
		shards      = flag.Int("shards", 0, "simulation shards per job (0 = serial loop; >=1 runs the parallel engine; workers are capped so shards x workers <= GOMAXPROCS)")
		timeout     = flag.Duration("timeout", 0, "per-job wall-clock timeout (0 = none)")
		retries     = flag.Int("retries", 1, "retries for jobs failing with an error")
		resume      = flag.Bool("resume", false, "skip jobs already completed in the -out manifest")
		dryRun      = flag.Bool("dry-run", false, "print the expanded job list and exit")
		injectPanic = flag.String("inject-panic", "", "make jobs whose ID contains this substring panic (fault-injection testing)")
		pf          prof.Flags
		of          obs.Flags
	)
	flag.Var(&vary, "vary", "scenario-mode sweep axis as \"field.path=v1,v2,...\" (repeatable; crossed in flag order)")
	pf.AddFlags()
	of.AddFlags(true)
	flag.Parse()

	obsOpts, err := of.Validate()
	if err != nil {
		return die(err)
	}

	stopProf, err := pf.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	defer stopProf()

	if *connect != "" {
		// Worker mode: the coordinator owns the grid; this process just
		// executes leases until the sweep is done.
		w := &sweepd.Worker{
			Dispatcher: sweepd.NewClient(*connect),
			Slots:      *workers,
			Timeout:    *timeout,
			Retries:    *retries,
			Progress:   os.Stderr,
		}
		if err := w.Run(context.Background()); err != nil {
			return die(err)
		}
		fmt.Fprintln(os.Stderr, "sweep: coordinator reports the sweep done, exiting")
		return 0
	}

	grid := experiments.Grid{
		Name: *name, Scale: *scale, Seed: *seed, Reps: *reps,
		BMs: splitCSV(*bms), CCs: splitCSV(*ccs),
		Loads: floatsCSV(*loads), RequestFracs: floatsCSV(*requests), Alphas: floatsCSV(*alphas),
		QueuesPerPort: *qpp, Workload: *workload, DurationMS: *duration,
		Shards:     *shards,
		TimeoutSec: timeout.Seconds(),
		Obs:        obsOpts,
		Scenario:   *scnFile,
		Vary:       vary,
	}
	if len(vary) > 0 && *scnFile == "" {
		return die(fmt.Errorf("-vary requires -scenario (axes are scenario field paths)"))
	}
	if *planFile != "" {
		data, err := os.ReadFile(*planFile)
		if err != nil {
			return die(err)
		}
		grid = experiments.Grid{}
		if err := json.Unmarshal(data, &grid); err != nil {
			return die(fmt.Errorf("%s: %w", *planFile, err))
		}
		// Telemetry flags apply on top of a plan file (the one exception
		// to "flags override nothing"), so stored plans can be re-traced.
		if obsOpts.Active() {
			grid.Obs = obsOpts
		}
	}

	plan, err := grid.Plan()
	if err != nil {
		return die(err)
	}
	if *injectPanic != "" {
		for i := range plan.Specs {
			if strings.Contains(plan.Specs[i].ID, *injectPanic) {
				id := plan.Specs[i].ID
				plan.Specs[i].Run = func(context.Context, int64) (runner.Result, error) {
					panic(fmt.Sprintf("injected panic in %s", id))
				}
			}
		}
	}
	if *dryRun {
		for i, s := range plan.Specs {
			fmt.Printf("%s\tseed=%d\n", s.ID, plan.SeedFor(i))
		}
		return 0
	}

	if !*resume {
		// A fresh sweep into a dir holding an old manifest would silently
		// skip jobs; require the explicit flag for that behavior.
		if _, err := os.Stat(filepath.Join(*out, "manifest.jsonl")); err == nil {
			return die(fmt.Errorf("%s already holds a sweep manifest; pass -resume to continue it or choose a fresh -out", *out))
		}
	}
	store, err := runner.OpenStore(*out)
	if err != nil {
		return die(err)
	}
	defer store.Close()

	fmt.Fprintf(os.Stderr, "sweep %q: %d jobs on %d workers -> %s\n",
		plan.Name, len(plan.Specs), *workers, *out)
	start := time.Now()
	// grid.Shards (not the flag) so a -plan file's shard setting also
	// caps the worker count against oversubscription.
	pool := &runner.Pool{
		Workers: *workers, JobShards: grid.Shards,
		Timeout: *timeout, Retries: *retries,
		Progress: os.Stderr, Store: store,
	}
	records, err := pool.Run(context.Background(), plan)
	if err != nil {
		return die(err)
	}

	groups := runner.Aggregate(records)
	aggPath := filepath.Join(*out, "aggregate.json")
	data, err := json.MarshalIndent(groups, "", "  ")
	if err != nil {
		return die(err)
	}
	if err := os.WriteFile(aggPath, append(data, '\n'), 0o644); err != nil {
		return die(err)
	}

	ok, cached := 0, 0
	for _, rec := range records {
		if rec.OK() {
			ok++
		}
		if rec.Cached {
			cached++
		}
	}
	failed := runner.Failed(records)
	fmt.Print(runner.FormatGroups(groups))
	fmt.Fprintf(os.Stderr, "done in %s: %d ok (%d from manifest), %d failed; aggregate -> %s\n",
		time.Since(start).Round(100*time.Millisecond), ok, cached, len(failed), aggPath)
	for _, rec := range failed {
		fmt.Fprintf(os.Stderr, "  FAILED %s: %s (%s)\n", rec.ID, firstLine(rec.Error), rec.Status)
	}
	if len(failed) > 0 {
		return 1
	}
	return 0
}

// die reports a fatal setup error; run returns its value so deferred
// cleanups still execute.
func die(err error) int {
	fmt.Fprintln(os.Stderr, err)
	return 2
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}

// varyAxes parses repeatable -vary "field.path=v1,v2" flags into
// scenario-mode grid axes, preserving flag order (axis order determines
// job IDs and therefore derived seeds).
type varyAxes []experiments.PathAxis

func (v *varyAxes) String() string {
	var parts []string
	for _, a := range *v {
		parts = append(parts, a.Path+"="+strings.Join(a.Values, ","))
	}
	return strings.Join(parts, " ")
}

func (v *varyAxes) Set(s string) error {
	path, vals, ok := strings.Cut(s, "=")
	if !ok || path == "" {
		return fmt.Errorf("want field.path=v1,v2,..., got %q", s)
	}
	values := splitCSV(vals)
	if len(values) == 0 {
		return fmt.Errorf("axis %q has no values", path)
	}
	*v = append(*v, experiments.PathAxis{Path: path, Values: values})
	return nil
}

func splitCSV(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func floatsCSV(s string) []float64 {
	var out []float64
	for _, f := range splitCSV(s) {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			fatal(fmt.Errorf("bad number %q: %w", f, err))
		}
		out = append(out, v)
	}
	return out
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
