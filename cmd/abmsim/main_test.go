package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// runTSV drives the CLI in-process and returns the flow TSV it wrote.
func runTSV(t *testing.T, args ...string) []byte {
	t.Helper()
	out := filepath.Join(t.TempDir(), "flows.tsv")
	if err := run(append(args, "-flows", out), io.Discard); err != nil {
		t.Fatalf("abmsim %v: %v", args, err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatalf("abmsim %v produced an empty trace", args)
	}
	return data
}

// TestScenarioFlagEquivalence proves the two front doors agree: a flag
// invocation and the scenario file it resolves to emit byte-identical
// flow TSVs, so committing a -save-scenario spec loses nothing.
func TestScenarioFlagEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	// 6ms is the shortest run where DT and ABM visibly diverge at this
	// load, which keeps the override check below non-vacuous.
	flags := []string{
		"-bm", "ABM", "-cc", "cubic", "-load", "0.6", "-request", "0.5",
		"-scale", "small", "-seed", "42", "-duration", "6ms",
	}

	dir := t.TempDir()
	resolved := filepath.Join(dir, "resolved.json")
	if err := run(append(flags, "-save-scenario", resolved), io.Discard); err != nil {
		t.Fatal(err)
	}

	fromFlags := runTSV(t, flags...)
	fromFile := runTSV(t, "-scenario", resolved)
	if !bytes.Equal(fromFlags, fromFile) {
		t.Fatal("flag invocation and -scenario run emit different flow TSVs")
	}

	// Overrides compose: a sparse spec plus an explicit -bm must match
	// the equivalent all-flags run, and differ from the base scheme.
	// (A sparse file, not the resolved one: resolution pinned ABM's
	// 1/8 headroom explicitly, and an explicit value must survive a
	// scheme override — that is the point of the resolved form.)
	sparse := filepath.Join(dir, "sparse.json")
	spec := `{
		"seed": 42, "duration": "6ms",
		"fabric": {"spines": 2, "leaves": 2, "hosts_per_leaf": 8},
		"switch": {"bm": "ABM"},
		"workload": {"load": 0.6, "cc": "cubic", "incast": {"request_frac": 0.5}}
	}`
	if err := os.WriteFile(sparse, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromFlags, runTSV(t, "-scenario", sparse)) {
		t.Fatal("hand-written sparse scenario differs from the flag run")
	}
	overridden := runTSV(t, "-scenario", sparse, "-bm", "DT")
	dtFlags := append([]string{}, flags...)
	dtFlags[1] = "DT"
	if !bytes.Equal(overridden, runTSV(t, dtFlags...)) {
		t.Fatal("-scenario with -bm override differs from the all-flags run")
	}
	if bytes.Equal(overridden, fromFile) {
		t.Fatal("-bm override had no effect on the loaded scenario")
	}
}

// TestScenarioConfigExclusive: the two whole-run inputs cannot be mixed.
func TestScenarioConfigExclusive(t *testing.T) {
	err := run([]string{"-config", "a.json", "-scenario", "b.json"}, io.Discard)
	if err == nil {
		t.Fatal("expected -config/-scenario conflict error")
	}
}

// TestSaveScenarioIsResolved: the spec -save-scenario writes is fully
// explicit and survives a reload unchanged.
func TestSaveScenarioIsResolved(t *testing.T) {
	dir := t.TempDir()
	first := filepath.Join(dir, "first.json")
	if err := run([]string{"-bm", "ABM", "-seed", "7", "-save-scenario", first}, io.Discard); err != nil {
		t.Fatal(err)
	}
	second := filepath.Join(dir, "second.json")
	if err := run([]string{"-scenario", first, "-save-scenario", second}, io.Discard); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("re-resolving a saved scenario changed it:\n%s\nvs\n%s", a, b)
	}
}
