// Command abmsim runs one simulation — a buffer-management scheme
// facing the paper's workloads on a leaf-spine fabric — and prints the
// headline metrics.
//
// The run is described either by flags, by a declarative scenario file,
// or both (explicitly-set flags override the file's fields):
//
//	abmsim -bm ABM -cc cubic -load 0.6 -request 0.3 -scale medium
//	abmsim -scenario examples/incast/scenario.json -shards 2
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"abm"
	"abm/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, err)
		}
		os.Exit(1)
	}
}

// run parses args, compiles them into a scenario and executes it. All
// flag surfaces live on a private FlagSet so tests can drive the CLI
// in-process.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("abmsim", flag.ContinueOnError)
	var (
		bmName  = fs.String("bm", "ABM", "buffer management scheme: "+strings.Join(abm.BMSchemes(), ", "))
		ccName  = fs.String("cc", "cubic", "congestion control: "+strings.Join(abm.CCAlgorithms(), ", "))
		load    = fs.Float64("load", 0.4, "web-search load as a fraction of bisection bandwidth")
		request = fs.Float64("request", 0.3, "incast request size as a fraction of the buffer (0 disables)")
		fanout  = fs.Int("fanout", 8, "incast fan-in degree")
		qpp     = fs.Int("queues", 1, "queues per port")
		kb      = fs.Float64("buffer", 9.6, "buffer in KB per port per Gb/s (Trident2=9.6, Tomahawk=5.12, Tofino=3.44)")
		scale   = fs.String("scale", "small", "fabric scale: small, medium, paper")
		seed    = fs.Int64("seed", 1, "random seed")
		shards  = fs.Int("shards", 0, "simulation shards (0 = serial loop; >=1 runs the parallel engine, clamped to the fabric's leaf count)")
		update  = fs.Duration("update", 0, "ABM-approx control-plane update interval (e.g. 800us)")
		flows   = fs.String("flows", "", "write a per-flow TSV trace to this file")
		sched   = fs.String("sched", "rr", "per-port scheduler: rr, dwrr, strict")
		wl      = fs.String("workload", "websearch", "background workload: websearch, datamining")
		cfgIn   = fs.String("config", "", "load the experiment cell from this JSON file (overrides other flags)")
		cfgOut  = fs.String("save-config", "", "write the resolved experiment cell as JSON and exit")
		scnIn   = fs.String("scenario", "", "load the run from this scenario JSON file; explicitly-set flags override its fields")
		scnOut  = fs.String("save-scenario", "", "write the fully-resolved scenario as JSON and exit")
		dur     = fs.Duration("duration", 0, "traffic duration override (e.g. 2ms; 0 = the scale's default)")
		hybrid  = fs.Bool("hybrid", false, "enable the hybrid fluid/packet engine (serial engine only)")
		topol   = fs.String("topology", "", "fabric topology: leafspine or fattree; empty keeps the scenario/scale shape")
		karity  = fs.Int("k", 0, "fat-tree arity (even, >= 2; implies -topology fattree)")
		of      obs.Flags
	)
	of.AddFlagsTo(fs, false)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cfgIn != "" && *scnIn != "" {
		return fmt.Errorf("-config and -scenario are mutually exclusive (a cell and a scenario both describe the whole run)")
	}

	obsOpts, err := of.Validate()
	if err != nil {
		return err
	}

	scaleVal, err := abm.ParseScale(*scale)
	if err != nil {
		return err
	}
	cell := abm.Experiment{
		Scale: scaleVal, Seed: *seed,
		BM: *bmName, Load: *load, WSCC: *ccName,
		RequestFrac:         *request,
		Fanout:              *fanout,
		QueuesPerPort:       *qpp,
		BufferKBPerPortGbps: *kb,
		UpdateInterval:      abm.Time(update.Nanoseconds()) * abm.Nanosecond,
		Scheduler:           *sched,
		Workload:            *wl,
		Shards:              *shards,
	}
	if *cfgIn != "" {
		data, err := os.ReadFile(*cfgIn)
		if err != nil {
			return err
		}
		cell = abm.Experiment{}
		if err := json.Unmarshal(data, &cell); err != nil {
			return fmt.Errorf("parsing %s: %w", *cfgIn, err)
		}
	}
	// Telemetry and duration flags apply on top of a loaded config, so a
	// saved cell can be re-traced without editing its JSON.
	if obsOpts.Active() {
		cell.Obs = obsOpts
	}
	if *dur > 0 {
		cell.Duration = abm.Time(dur.Nanoseconds()) * abm.Nanosecond
	}
	if *cfgOut != "" {
		data, err := json.MarshalIndent(cell, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*cfgOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "experiment cell written to %s\n", *cfgOut)
		return nil
	}

	// Every run path compiles down to one declarative scenario.
	sc := cell.Scenario()
	if *scnIn != "" {
		sc, err = abm.LoadScenario(*scnIn)
		if err != nil {
			return err
		}
		applyFlagOverrides(&sc, fs, cell)
		if obsOpts.Active() {
			sc.Obs = obsOpts
		}
	}
	// -hybrid composes with -scenario in both directions: explicitly
	// setting it (true or false) overrides the file's hybrid block.
	hybridSet := false
	fs.Visit(func(f *flag.Flag) { hybridSet = hybridSet || f.Name == "hybrid" })
	if hybridSet {
		sc.Hybrid.Enabled = *hybrid
	}
	// Topology flags apply last: a fat tree is sized by k alone, so they
	// clear whatever leaf–spine dimensions -scale or the file set.
	if *karity > 0 && *topol == "" {
		*topol = "fattree"
	}
	if *topol != "" {
		sc.Fabric.Topology = *topol
		if *topol == "fattree" {
			sc.Fabric.K = *karity
			sc.Fabric.Spines, sc.Fabric.Leaves, sc.Fabric.HostsPerLeaf = 0, 0, 0
		}
	}
	if *scnOut != "" {
		resolved, err := sc.Resolve()
		if err != nil {
			return err
		}
		if err := resolved.Save(*scnOut); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "resolved scenario written to %s\n", *scnOut)
		return nil
	}

	start := time.Now()
	res, col, err := abm.RunScenarioDetailed(sc)
	if err != nil {
		return err
	}
	if *flows != "" {
		f, err := os.Create(*flows)
		if err != nil {
			return err
		}
		if err := abm.WriteFlowTrace(f, col.Flows); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "flow trace written to %s (%d flows)\n", *flows, len(col.Flows))
	}
	printResult(stdout, res, time.Since(start))
	return nil
}

// applyFlagOverrides overlays the flags the user explicitly set onto a
// loaded scenario, so "-scenario base.json -bm DT -shards 4" composes.
// The cell carries the already-parsed flag values; -scale overlays the
// fabric dimensions and duration first so an explicit -duration still
// wins.
func applyFlagOverrides(sc *abm.Scenario, fs *flag.FlagSet, cell abm.Experiment) {
	set := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	fromFlags := cell.Scenario()

	if set["scale"] {
		sc.Fabric.Spines = fromFlags.Fabric.Spines
		sc.Fabric.Leaves = fromFlags.Fabric.Leaves
		sc.Fabric.HostsPerLeaf = fromFlags.Fabric.HostsPerLeaf
		sc.Duration = fromFlags.Duration
	}
	for name, apply := range map[string]func(){
		"bm":       func() { sc.Switch.BM = fromFlags.Switch.BM },
		"cc":       func() { sc.Workload.CC = fromFlags.Workload.CC },
		"load":     func() { sc.Workload.Load = fromFlags.Workload.Load },
		"request":  func() { sc.Workload.Incast.RequestFrac = fromFlags.Workload.Incast.RequestFrac },
		"fanout":   func() { sc.Workload.Incast.Fanout = fromFlags.Workload.Incast.Fanout },
		"queues":   func() { sc.Buffer.QueuesPerPort = fromFlags.Buffer.QueuesPerPort },
		"buffer":   func() { sc.Buffer.KBPerPortPerGbps = fromFlags.Buffer.KBPerPortPerGbps },
		"seed":     func() { sc.Seed = fromFlags.Seed },
		"shards":   func() { sc.Shards = fromFlags.Shards },
		"update":   func() { sc.Switch.UpdateInterval = fromFlags.Switch.UpdateInterval },
		"sched":    func() { sc.Switch.Scheduler = fromFlags.Switch.Scheduler },
		"workload": func() { sc.Workload.Background = fromFlags.Workload.Background },
		"duration": func() { sc.Duration = fromFlags.Duration },
	} {
		if set[name] {
			apply()
		}
	}
}

// printResult renders the headline metrics from the run's resolved
// scenario and summary.
func printResult(w io.Writer, res abm.ScenarioResult, wall time.Duration) {
	rs := res.Scenario
	s := res.Summary
	fmt.Fprintf(w, "scheme            %s\n", rs.Switch.BM)
	fmt.Fprintf(w, "congestion ctrl   %s\n", rs.Workload.CC)
	if rs.Fabric.Topology == "fattree" {
		fmt.Fprintf(w, "fabric            fat-tree k=%d (seed %d)\n", rs.Fabric.K, rs.Seed)
	} else {
		fmt.Fprintf(w, "fabric            %dx%dx%d (seed %d)\n",
			rs.Fabric.Spines, rs.Fabric.Leaves, rs.Fabric.HostsPerLeaf, rs.Seed)
	}
	fmt.Fprintf(w, "load / request    %.0f%% / %.0f%% of buffer\n",
		rs.Workload.Load*100, rs.Workload.Incast.RequestFrac*100)
	fmt.Fprintln(w, strings.Repeat("-", 44))
	fmt.Fprintf(w, "p99 incast FCT slowdown    %10.1f\n", s.P99IncastSlowdown)
	fmt.Fprintf(w, "p99 short-flow slowdown    %10.1f\n", s.P99ShortSlowdown)
	fmt.Fprintf(w, "p99.9 short-flow slowdown  %10.1f\n", s.P999ShortSlowdown)
	fmt.Fprintf(w, "median long-flow slowdown  %10.2f\n", s.MedianLongSlowdown)
	fmt.Fprintf(w, "p99 buffer occupancy       %9.1f%%\n", 100*s.P99BufferFrac)
	fmt.Fprintf(w, "avg long-flow throughput   %9.1f%%\n", 100*s.AvgThroughputFrac)
	fmt.Fprintln(w, strings.Repeat("-", 44))
	fmt.Fprintf(w, "flows %d (unfinished %d), drops %d (unscheduled %d)\n",
		s.Flows, s.Unfinished, res.Drops, res.UnscheduledDrops)
	fmt.Fprintf(w, "%d events in %.1fs wall time\n", res.Events, wall.Seconds())
	if h := res.Hybrid; h != nil {
		fmt.Fprintf(w, "hybrid: %d demotions, %d promotions, %d epochs, %d fluid bytes (max %d concurrent)\n",
			h.Demotions, h.Promotions, h.Epochs, h.FluidBytes, h.MaxFluid)
	}
	if len(res.Counters) > 0 {
		fmt.Fprintln(w, strings.Repeat("-", 44))
		keys := make([]string, 0, len(res.Counters))
		for k := range res.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "%-32s %12d\n", k, res.Counters[k])
		}
	}
	for _, out := range []struct{ what, path string }{
		{"event trace", rs.Obs.EventsFile},
		{"chrome trace", rs.Obs.ChromeFile},
		{"counter summary", rs.Obs.CountersFile},
		{"histogram snapshots", rs.Obs.HistFile},
	} {
		if out.path != "" {
			fmt.Fprintf(w, "%s written to %s\n", out.what, out.path)
		}
	}
}
