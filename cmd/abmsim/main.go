// Command abmsim runs one evaluation cell — a buffer-management scheme
// facing the paper's workloads on a leaf-spine fabric — and prints the
// headline metrics.
//
// Example:
//
//	abmsim -bm ABM -cc cubic -load 0.6 -request 0.3 -scale medium
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"abm"
	"abm/internal/obs"
)

func main() {
	var (
		bmName  = flag.String("bm", "ABM", "buffer management scheme: "+strings.Join(abm.BMSchemes(), ", "))
		ccName  = flag.String("cc", "cubic", "congestion control: "+strings.Join(abm.CCAlgorithms(), ", "))
		load    = flag.Float64("load", 0.4, "web-search load as a fraction of bisection bandwidth")
		request = flag.Float64("request", 0.3, "incast request size as a fraction of the buffer (0 disables)")
		fanout  = flag.Int("fanout", 8, "incast fan-in degree")
		qpp     = flag.Int("queues", 1, "queues per port")
		kb      = flag.Float64("buffer", 9.6, "buffer in KB per port per Gb/s (Trident2=9.6, Tomahawk=5.12, Tofino=3.44)")
		scale   = flag.String("scale", "small", "fabric scale: small, medium, paper")
		seed    = flag.Int64("seed", 1, "random seed")
		shards  = flag.Int("shards", 0, "simulation shards (0 = serial loop; >=1 runs the parallel engine, clamped to the fabric's leaf count)")
		update  = flag.Duration("update", 0, "ABM-approx control-plane update interval (e.g. 800us)")
		flows   = flag.String("flows", "", "write a per-flow TSV trace to this file")
		sched   = flag.String("sched", "rr", "per-port scheduler: rr, dwrr, strict")
		wl      = flag.String("workload", "websearch", "background workload: websearch, datamining")
		cfgIn   = flag.String("config", "", "load the experiment cell from this JSON file (overrides other flags)")
		cfgOut  = flag.String("save-config", "", "write the resolved experiment cell as JSON and exit")
		dur     = flag.Duration("duration", 0, "traffic duration override (e.g. 2ms; 0 = the scale's default)")
		of      obs.Flags
	)
	of.AddFlags(false)
	flag.Parse()

	obsOpts, err := of.Validate()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	sc, err := abm.ParseScale(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cell := abm.Experiment{
		Scale: sc, Seed: *seed,
		BM: *bmName, Load: *load, WSCC: *ccName,
		RequestFrac:         *request,
		Fanout:              *fanout,
		QueuesPerPort:       *qpp,
		BufferKBPerPortGbps: *kb,
		UpdateInterval:      abm.Time(update.Nanoseconds()) * abm.Nanosecond,
		Scheduler:           *sched,
		Workload:            *wl,
		Shards:              *shards,
	}
	if *cfgIn != "" {
		data, err := os.ReadFile(*cfgIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cell = abm.Experiment{}
		if err := json.Unmarshal(data, &cell); err != nil {
			fmt.Fprintf(os.Stderr, "parsing %s: %v\n", *cfgIn, err)
			os.Exit(1)
		}
	}
	// Telemetry and duration flags apply on top of a loaded config, so a
	// saved cell can be re-traced without editing its JSON.
	if obsOpts.Active() {
		cell.Obs = obsOpts
	}
	if *dur > 0 {
		cell.Duration = abm.Time(dur.Nanoseconds()) * abm.Nanosecond
	}
	if *cfgOut != "" {
		data, err := json.MarshalIndent(cell, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*cfgOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("experiment cell written to %s\n", *cfgOut)
		return
	}

	start := time.Now()
	res, col, err := abm.RunExperimentDetailed(cell)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *flows != "" {
		f, err := os.Create(*flows)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := abm.WriteFlowTrace(f, col.Flows); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("flow trace written to %s (%d flows)\n", *flows, len(col.Flows))
	}
	s := res.Summary
	fmt.Printf("scheme            %s\n", cell.BM)
	fmt.Printf("congestion ctrl   %s\n", cell.WSCC)
	fmt.Printf("scale             %s (seed %d)\n", cell.Scale, cell.Seed)
	fmt.Printf("load / request    %.0f%% / %.0f%% of buffer\n", cell.Load*100, cell.RequestFrac*100)
	fmt.Println(strings.Repeat("-", 44))
	fmt.Printf("p99 incast FCT slowdown    %10.1f\n", s.P99IncastSlowdown)
	fmt.Printf("p99 short-flow slowdown    %10.1f\n", s.P99ShortSlowdown)
	fmt.Printf("p99.9 short-flow slowdown  %10.1f\n", s.P999ShortSlowdown)
	fmt.Printf("median long-flow slowdown  %10.2f\n", s.MedianLongSlowdown)
	fmt.Printf("p99 buffer occupancy       %9.1f%%\n", 100*s.P99BufferFrac)
	fmt.Printf("avg long-flow throughput   %9.1f%%\n", 100*s.AvgThroughputFrac)
	fmt.Println(strings.Repeat("-", 44))
	fmt.Printf("flows %d (unfinished %d), drops %d (unscheduled %d)\n",
		s.Flows, s.Unfinished, res.Drops, res.UnscheduledDrops)
	fmt.Printf("%d events in %.1fs wall time\n", res.Events, time.Since(start).Seconds())
	if len(res.Counters) > 0 {
		fmt.Println(strings.Repeat("-", 44))
		keys := make([]string, 0, len(res.Counters))
		for k := range res.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("%-32s %12d\n", k, res.Counters[k])
		}
	}
	for _, out := range []struct{ what, path string }{
		{"event trace", cell.Obs.EventsFile},
		{"chrome trace", cell.Obs.ChromeFile},
		{"counter summary", cell.Obs.CountersFile},
	} {
		if out.path != "" {
			fmt.Printf("%s written to %s\n", out.what, out.path)
		}
	}
}
