// Command benchreport runs the repository's benchmarks and records a
// machine-readable snapshot. It shells out to `go test -bench`, parses
// the standard benchmark output (including custom metrics such as
// events/s, the -benchmem columns, and the hybrid-engine activity
// metrics BenchmarkHybridSteady reports — flows/op, demotions/op,
// promotions/op, epochs/op), and writes one JSON document — by default
// BENCH_<yyyy-mm-dd>.json in the current directory.
//
// Snapshots committed at the repo root are the performance baseline.
// Compare a working tree against the last one with
//
//	go run ./cmd/benchreport -bench 'Fig6|PacketLifecycle|EventQueue' \
//	    -out /tmp/now.json -compare BENCH_2026-08-08.json
//
// -compare diffs the fresh run against the baseline snapshot and exits
// nonzero when any gated metric (default: events/s and allocs/op)
// regresses by more than -tolerance. CI gates allocs/op only — at
// -benchtime 100x it amortizes warm-up and reproduces exactly even on
// shared runners, while wall-clock throughput does not; events/s
// gating is for the committed bench box. See DESIGN.md ("Event engine
// internals") for the workflow.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the snapshot schema.
type Report struct {
	Date       string      `json:"date"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	CPU        string      `json:"cpu,omitempty"`
	NumCPU     int         `json:"num_cpu"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Packages   []string    `json:"packages"`
	BenchFlags []string    `json:"bench_flags"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	var (
		bench     = flag.String("bench", ".", "benchmark regexp passed to go test -bench")
		benchtime = flag.String("benchtime", "1s", "go test -benchtime value")
		count     = flag.Int("count", 1, "go test -count value; the snapshot keeps the best run per benchmark")
		pkgs      = flag.String("pkgs", "./...", "comma-separated packages to benchmark")
		out       = flag.String("out", "", "output file (default BENCH_<date>.json)")
		verbose   = flag.Bool("v", false, "echo the raw go test output to stderr")
		compare   = flag.String("compare", "", "baseline BENCH json to diff against; exit 1 on regression")
		tolerance = flag.Float64("tolerance", 0.10, "allowed fractional regression per gated metric")
		gate      = flag.String("gate", "events/s,allocs/op", "comma-separated metrics gated by -compare")
	)
	flag.Parse()

	date := time.Now().Format("2006-01-02")
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", date)
	}

	args := []string{
		"test", "-run=NONE",
		"-bench=" + *bench,
		"-benchtime=" + *benchtime,
		"-benchmem",
		fmt.Sprintf("-count=%d", *count),
	}
	pkgList := strings.Split(*pkgs, ",")
	args = append(args, pkgList...)

	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: go %s: %v\n", strings.Join(args, " "), err)
		os.Exit(1)
	}
	if *verbose {
		os.Stderr.Write(buf.Bytes())
	}

	rep := &Report{
		Date:       date,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Packages:   pkgList,
		BenchFlags: args[1:],
	}
	parse(&buf, rep)
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchreport: no benchmark lines in go test output")
		os.Exit(1)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	fmt.Printf("%d benchmarks -> %s\n", len(rep.Benchmarks), path)

	if *compare != "" {
		base, err := loadReport(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		gated := strings.Split(*gate, ",")
		if regressed := diffReports(os.Stdout, base, rep, gated, *tolerance); regressed {
			fmt.Fprintf(os.Stderr, "benchreport: regression beyond %.0f%% vs %s\n",
				*tolerance*100, *compare)
			os.Exit(1)
		}
	}
}

// loadReport reads a snapshot written by a previous benchreport run.
func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// metricOf extracts a metric value from a benchmark; ns/op maps to the
// dedicated field, everything else to the custom-metric table.
func metricOf(b *Benchmark, metric string) (float64, bool) {
	if metric == "ns/op" {
		return b.NsPerOp, b.NsPerOp > 0
	}
	v, ok := b.Metrics[metric]
	return v, ok
}

// higherIsBetter classifies a metric's direction: throughput metrics
// regress by going down, cost metrics (allocs/op, B/op, ns/op) by
// going up.
func higherIsBetter(metric string) bool {
	return strings.HasSuffix(metric, "/s")
}

// diffReports prints a per-benchmark delta table for every gated metric
// present in both snapshots and reports whether any delta regressed
// beyond the tolerance. A baseline of exactly zero (the zero-alloc
// benchmarks) admits no regression at all: any nonzero new value fails.
func diffReports(w *os.File, base, cur *Report, gated []string, tol float64) bool {
	byName := make(map[string]*Benchmark, len(base.Benchmarks))
	for i := range base.Benchmarks {
		byName[base.Benchmarks[i].Name] = &base.Benchmarks[i]
	}
	regressed := false
	compared := 0
	for i := range cur.Benchmarks {
		nb := &cur.Benchmarks[i]
		ob, ok := byName[nb.Name]
		if !ok {
			continue
		}
		for _, metric := range gated {
			metric = strings.TrimSpace(metric)
			oldV, okOld := metricOf(ob, metric)
			newV, okNew := metricOf(nb, metric)
			if !okOld && !okNew {
				continue
			}
			// A benchmark that stopped reporting a gated metric the
			// baseline has is itself suspicious; treat as regression.
			bad := false
			var frac float64
			switch {
			case !okNew:
				bad = true
			case oldV == 0:
				bad = newV > 0 && !higherIsBetter(metric)
			case higherIsBetter(metric):
				frac = (oldV - newV) / oldV
				bad = frac > tol
			default:
				frac = (newV - oldV) / oldV
				bad = frac > tol
			}
			compared++
			status := "ok"
			if bad {
				status = "REGRESSED"
				regressed = true
			}
			// frac is the regression fraction in either direction, so
			// -frac reads as "positive = improved" for every metric.
			delta := -frac * 100
			if delta == 0 {
				delta = 0 // normalize -0.0 for display
			}
			fmt.Fprintf(w, "%-50s %12s %14.6g -> %-14.6g %+6.1f%%  %s\n",
				nb.Name, metric, oldV, newV, delta, status)
		}
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchreport: no overlapping benchmarks to compare")
		return true
	}
	return regressed
}

// parse consumes `go test -bench` output: `cpu:` header lines and
// benchmark result lines of the form
//
//	BenchmarkName-8   123   456.7 ns/op   89 events/s   0 B/op   0 allocs/op
//
// With -count > 1 each benchmark appears multiple times; parse keeps
// the best run per name (lowest ns/op, with that run's metrics).
// Interference only ever slows a benchmark down, so best-of-N is the
// least-noisy point estimate for a baseline snapshot.
func parse(buf *bytes.Buffer, rep *Report) {
	best := map[string]int{}
	sc := bufio.NewScanner(buf)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			rep.CPU = cpu
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		runs, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{
			// Strip the -GOMAXPROCS suffix so snapshots from different
			// machines compare by name.
			Name:    strings.TrimSuffix(fields[0], fmt.Sprintf("-%d", runtime.GOMAXPROCS(0))),
			Runs:    runs,
			Metrics: map[string]float64{},
		}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				b.NsPerOp = val
				continue
			}
			b.Metrics[unit] = val
		}
		if len(b.Metrics) == 0 {
			b.Metrics = nil
		}
		if i, seen := best[b.Name]; seen {
			if b.NsPerOp < rep.Benchmarks[i].NsPerOp {
				rep.Benchmarks[i] = b
			}
			continue
		}
		best[b.Name] = len(rep.Benchmarks)
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
}
