// Command benchreport runs the repository's benchmarks and records a
// machine-readable snapshot. It shells out to `go test -bench`, parses
// the standard benchmark output (including custom metrics such as
// events/s and the -benchmem columns), and writes one JSON document —
// by default BENCH_<yyyy-mm-dd>.json in the current directory.
//
// Snapshots committed at the repo root are the performance baseline:
// compare a working tree against the last one with
//
//	go run ./cmd/benchreport -bench 'Fig6|PacketLifecycle|EventQueue' -out /tmp/now.json
//	# then diff the events/s and allocs/op fields against BENCH_*.json
//
// See DESIGN.md ("Event engine internals") for the workflow.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the snapshot schema.
type Report struct {
	Date       string      `json:"date"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	CPU        string      `json:"cpu,omitempty"`
	NumCPU     int         `json:"num_cpu"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Packages   []string    `json:"packages"`
	BenchFlags []string    `json:"bench_flags"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	var (
		bench     = flag.String("bench", ".", "benchmark regexp passed to go test -bench")
		benchtime = flag.String("benchtime", "1s", "go test -benchtime value")
		count     = flag.Int("count", 1, "go test -count value")
		pkgs      = flag.String("pkgs", "./...", "comma-separated packages to benchmark")
		out       = flag.String("out", "", "output file (default BENCH_<date>.json)")
		verbose   = flag.Bool("v", false, "echo the raw go test output to stderr")
	)
	flag.Parse()

	date := time.Now().Format("2006-01-02")
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", date)
	}

	args := []string{
		"test", "-run=NONE",
		"-bench=" + *bench,
		"-benchtime=" + *benchtime,
		"-benchmem",
		fmt.Sprintf("-count=%d", *count),
	}
	pkgList := strings.Split(*pkgs, ",")
	args = append(args, pkgList...)

	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: go %s: %v\n", strings.Join(args, " "), err)
		os.Exit(1)
	}
	if *verbose {
		os.Stderr.Write(buf.Bytes())
	}

	rep := &Report{
		Date:       date,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Packages:   pkgList,
		BenchFlags: args[1:],
	}
	parse(&buf, rep)
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchreport: no benchmark lines in go test output")
		os.Exit(1)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	fmt.Printf("%d benchmarks -> %s\n", len(rep.Benchmarks), path)
}

// parse consumes `go test -bench` output: `cpu:` header lines and
// benchmark result lines of the form
//
//	BenchmarkName-8   123   456.7 ns/op   89 events/s   0 B/op   0 allocs/op
func parse(buf *bytes.Buffer, rep *Report) {
	sc := bufio.NewScanner(buf)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			rep.CPU = cpu
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		runs, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{
			// Strip the -GOMAXPROCS suffix so snapshots from different
			// machines compare by name.
			Name:    strings.TrimSuffix(fields[0], fmt.Sprintf("-%d", runtime.GOMAXPROCS(0))),
			Runs:    runs,
			Metrics: map[string]float64{},
		}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				b.NsPerOp = val
				continue
			}
			b.Metrics[unit] = val
		}
		if len(b.Metrics) == 0 {
			b.Metrics = nil
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
}
