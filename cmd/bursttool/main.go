// Command bursttool evaluates the paper's closed-form burst-tolerance
// and isolation results without running a simulation — the "lessons on
// how to configure alpha values" of §3.4. It prints DT's and ABM's burst
// tolerance across a congestion sweep plus ABM's Theorem 1-3 bounds for
// the given configuration.
package main

import (
	"flag"
	"fmt"

	"abm"
)

func main() {
	var (
		bufMB  = flag.Float64("buffer", 5, "shared buffer size in MB")
		rateG  = flag.Float64("rate", 10, "port bandwidth in Gb/s")
		alpha  = flag.Float64("alpha", 0.5, "alpha for regular traffic")
		alphaU = flag.Float64("alpha-unsched", 64, "alpha for unscheduled (first-RTT) packets")
		burstG = flag.Float64("burst", 150, "burst arrival rate in Gb/s")
		queues = flag.Int("queues", 1, "congested queues sharing the burst's port")
	)
	flag.Parse()

	b := abm.ByteCount(*bufMB * float64(abm.Megabyte))
	rate := abm.Rate(*rateG * float64(abm.GigabitPerSec))

	fmt.Printf("Buffer %.1fMB, ports at %.0fGb/s, alpha=%.2f (unscheduled %.0f), burst %.0fGb/s\n\n",
		*bufMB, *rateG, *alpha, *alphaU, *burstG)

	fmt.Println("ABM guarantees (Theorems 1-3, two priorities):")
	fmt.Printf("  minimum buffer per priority  %v\n", abm.ABMMinGuarantee(b, *alpha, 2**alpha))
	fmt.Printf("  maximum buffer per priority  %v\n", abm.ABMMaxAllocation(b, *alpha))
	fmt.Printf("  drain time bound             %v\n\n", abm.ABMDrainTimeBound(b, *alpha, rate))

	fmt.Println("Burst tolerance vs congested ports (Figure 5 row):")
	fmt.Println("ports\tDT\t\tABM")
	for ports := 0; ports <= 14; ports += 2 {
		s := abm.BurstScenario{
			B:              b,
			PortRate:       rate,
			Alpha:          *alpha,
			AlphaBurst:     *alphaU,
			CongestedPorts: ports,
			QueuesPerPort:  *queues,
			BurstRate:      abm.Rate(*burstG * float64(abm.GigabitPerSec)),
		}
		fmt.Printf("%d\t%v\t%v\n", ports, s.DTBurstTolerance(), s.ABMBurstTolerance())
	}

	fmt.Println("\nDT steady-state threshold vs congested queues (Eq. 6):")
	fmt.Println("queues\tthreshold\toccupied")
	for n := 1; n <= 20; n += 3 {
		thr := abm.DTSteadyThreshold(b, *alpha, []abm.PriorityLoad{{Alpha: *alpha, Congested: n}})
		occupied := abm.ByteCount(n) * thr
		fmt.Printf("%d\t%v\t%.0f%%\n", n, thr, 100*float64(occupied)/float64(b))
	}
}
