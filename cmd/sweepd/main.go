// Command sweepd is the distributed sweep service: a coordinator that
// owns one sweep's job table and leases jobs to workers over HTTP+JSON
// on a trusted loopback/LAN segment.
//
// The coordinator expands the same grid cmd/sweep runs (flags or a
// JSON plan file), hands out time-bounded job leases, re-leases jobs
// whose workers miss heartbeats, persists every record to a durable
// append-only log (crash-safe, resumable), and — when -ci-target is
// set — keeps adding seed replications to a cell until the bootstrap
// confidence interval of the target metric tightens below the target.
//
// Workers are thin wrappers around the exact execution path the
// in-process pool uses (same derived seeds, panic isolation, per-job
// deadlines, bounded retries), so a sweep run by one coordinator and N
// workers — on one machine or several — aggregates byte-identically to
// cmd/sweep at the same seed.
//
//	sweepd serve -scenario scenarios/oversub-2to1.json \
//	       -vary switch.bm=DT,ABM -reps 3 -addr 127.0.0.1:7077 -out results/serve
//	sweepd work -connect 127.0.0.1:7077 -slots 4
//	sweepd status -connect 127.0.0.1:7077
//
// serve also runs -workers in-process workers (default NumCPU), so a
// single invocation with no remote workers behaves exactly like
// cmd/sweep, down to the aggregate bytes.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"abm/internal/experiments"
	"abm/internal/obs"
	"abm/internal/obs/prom"
	"abm/internal/runner"
	"abm/internal/sweepd"
)

func main() { os.Exit(run()) }

func run() int {
	if len(os.Args) < 2 {
		usage()
		return 2
	}
	switch os.Args[1] {
	case "serve":
		return serveCmd(os.Args[2:])
	case "work":
		return workCmd(os.Args[2:])
	case "status":
		return statusCmd(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return 0
	default:
		fmt.Fprintf(os.Stderr, "sweepd: unknown subcommand %q\n", os.Args[1])
		usage()
		return 2
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  sweepd serve  [grid flags] -addr host:port -out dir   run the coordinator (plus -workers in-process workers)
  sweepd work   -connect host:port [-slots n]           work a remote coordinator's sweep
  sweepd status -connect host:port                      print a coordinator's live status
  sweepd status -out dir                                replay a finished sweep's record log offline
`)
}

// serveCmd runs the coordinator: grid flags mirror cmd/sweep, service
// flags add the lease/replication/durability knobs.
func serveCmd(args []string) int {
	fs := flag.NewFlagSet("sweepd serve", flag.ExitOnError)
	var (
		planFile = fs.String("plan", "", "JSON plan file (see internal/experiments.Grid)")
		name     = fs.String("name", "sweep", "sweep name (prefixes job IDs)")
		scale    = fs.String("scale", "small", "fabric scale: small, medium, paper")
		seed     = fs.Int64("seed", 1, "plan seed; per-job seeds derive from it")
		reps     = fs.Int("reps", 1, "seed replications per configuration")
		bms      = fs.String("bms", "ABM", "comma-separated buffer-management schemes")
		ccs      = fs.String("ccs", "cubic", "comma-separated congestion-control algorithms")
		loads    = fs.String("loads", "0.4", "comma-separated web-search loads")
		requests = fs.String("requests", "0.3", "comma-separated incast request fractions of the buffer")
		alphas   = fs.String("alphas", "", "comma-separated alphas (empty = scheme default)")
		qpp      = fs.Int("queues", 0, "queues per port (0 = default)")
		workload = fs.String("workload", "", "background workload: websearch (default), datamining")
		duration = fs.Float64("duration-ms", 0, "traffic duration override in milliseconds (0 = scale default)")
		shards   = fs.Int("shards", 0, "simulation shards per job (0 = serial loop)")
		timeout  = fs.Duration("timeout", 0, "per-job wall-clock timeout (0 = none)")
		scnFile  = fs.String("scenario", "", "base scenario JSON file; -vary axes mutate it by field path")
		vary     varyAxes

		addr       = fs.String("addr", "127.0.0.1:7077", "listen address for worker connections")
		workers    = fs.Int("workers", runtime.NumCPU(), "in-process workers (0 = remote workers only)")
		retries    = fs.Int("retries", 1, "retries for jobs failing with an error (in-process workers)")
		leaseTTL   = fs.Duration("lease-ttl", 30*time.Second, "lease lifetime without a heartbeat")
		maxLeases  = fs.Int("max-lease-attempts", 5, "leases per job before the coordinator records it failed")
		ciTarget   = fs.Float64("ci-target", 0, "adaptive replication: relative CI half-width target (0 = off)")
		ciMetric   = fs.String("ci-metric", "p99_incast_slowdown", "metric adaptive replication tightens")
		maxReps    = fs.Int("max-reps", 0, "adaptive replication cap per cell (0 = 4x base reps)")
		out        = fs.String("out", "sweepd-results", "output directory (records.log, aggregate.json)")
		resume     = fs.Bool("resume", false, "resume from an existing records.log in -out")
		batch      = fs.Int("batch", 64, "record-log commit batch size")
		batchDelay = fs.Duration("batch-delay", 200*time.Millisecond, "record-log commit deadline")
		quiet      = fs.Bool("quiet", false, "suppress per-job progress lines")
		of         obs.Flags
	)
	fs.Var(&vary, "vary", "scenario-mode sweep axis as \"field.path=v1,v2,...\" (repeatable)")
	of.AddFlagsTo(fs, true)
	fs.Parse(args)

	obsOpts, err := of.Validate()
	if err != nil {
		return die(err)
	}
	grid := experiments.Grid{
		Name: *name, Scale: *scale, Seed: *seed, Reps: *reps,
		BMs: splitCSV(*bms), CCs: splitCSV(*ccs),
		Loads: floatsCSV(*loads), RequestFracs: floatsCSV(*requests), Alphas: floatsCSV(*alphas),
		QueuesPerPort: *qpp, Workload: *workload, DurationMS: *duration,
		Shards: *shards, TimeoutSec: timeout.Seconds(),
		Obs: obsOpts, Scenario: *scnFile, Vary: vary,
	}
	if len(vary) > 0 && *scnFile == "" {
		return die(fmt.Errorf("-vary requires -scenario (axes are scenario field paths)"))
	}
	if *planFile != "" {
		data, err := os.ReadFile(*planFile)
		if err != nil {
			return die(err)
		}
		grid = experiments.Grid{}
		if err := json.Unmarshal(data, &grid); err != nil {
			return die(fmt.Errorf("%s: %w", *planFile, err))
		}
		if obsOpts.Active() {
			grid.Obs = obsOpts
		}
	}

	logPath := filepath.Join(*out, "records.log")
	if !*resume {
		if _, err := os.Stat(logPath); err == nil {
			return die(fmt.Errorf("%s already holds a record log; pass -resume to continue it or choose a fresh -out", *out))
		}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return die(err)
	}
	recLog, err := sweepd.OpenFileLog(logPath)
	if err != nil {
		return die(err)
	}
	store := sweepd.NewStore(recLog, *batch, *batchDelay)
	// Worker-shipped telemetry bundles land beside the record log.
	store.TelemetryDir = filepath.Join(*out, "telemetry")
	defer store.Close()

	var progress *os.File
	if !*quiet {
		progress = os.Stderr
	}
	c, err := sweepd.NewCoordinator(sweepd.Config{
		Grid:             &grid,
		LeaseTTL:         *leaseTTL,
		MaxLeaseAttempts: *maxLeases,
		CITarget:         *ciTarget,
		CIMetric:         *ciMetric,
		MaxReps:          *maxReps,
		Store:            store,
		Progress:         progress,
	})
	if err != nil {
		return die(err)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return die(err)
	}
	defer l.Close()
	go c.Serve(l)

	fmt.Fprintf(os.Stderr, "sweepd %q: %d jobs, listening on %s, %d in-process workers -> %s\n",
		c.Plan().Name, len(c.Plan().Specs), l.Addr(), *workers, *out)

	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < *workers; i++ {
		w := &sweepd.Worker{
			Dispatcher: c,
			Name:       fmt.Sprintf("local-%d", i),
			Plan:       c.Plan(),
			Retries:    *retries,
			Progress:   progress,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil {
				fmt.Fprintf(os.Stderr, "sweepd: %v\n", err)
			}
		}()
	}

	start := time.Now()
	if err := c.Wait(ctx); err != nil {
		return die(err)
	}
	wg.Wait()
	if err := store.Flush(); err != nil {
		return die(err)
	}

	records := c.Records()
	groups := runner.Aggregate(records)
	aggPath := filepath.Join(*out, "aggregate.json")
	data, err := json.MarshalIndent(groups, "", "  ")
	if err != nil {
		return die(err)
	}
	if err := os.WriteFile(aggPath, append(data, '\n'), 0o644); err != nil {
		return die(err)
	}

	ok, cached := 0, 0
	for _, rec := range records {
		if rec.OK() {
			ok++
		}
		if rec.Cached {
			cached++
		}
	}
	failed := runner.Failed(records)
	fmt.Print(runner.FormatGroups(groups))
	st := store.Stats()
	fmt.Fprintf(os.Stderr, "done in %s: %d ok (%d from log), %d failed; %d records in %d batches; aggregate -> %s\n",
		time.Since(start).Round(100*time.Millisecond), ok, cached, len(failed), st.Records, st.Batches, aggPath)
	for _, rec := range failed {
		fmt.Fprintf(os.Stderr, "  FAILED %s: %s (%s)\n", rec.ID, firstLine(rec.Error), rec.Status)
	}
	if len(failed) > 0 {
		return 1
	}
	return 0
}

// workCmd joins a remote coordinator as a worker.
func workCmd(args []string) int {
	fs := flag.NewFlagSet("sweepd work", flag.ExitOnError)
	var (
		connect     = fs.String("connect", "", "coordinator address (host:port or URL)")
		name        = fs.String("name", "", "worker name (default worker-<pid>)")
		slots       = fs.Int("slots", runtime.NumCPU(), "concurrent jobs")
		retries     = fs.Int("retries", 1, "retries for jobs failing with an error")
		metricsAddr = fs.String("metrics-addr", "", "serve the worker's own /metrics on this address (empty = off)")
		quiet       = fs.Bool("quiet", false, "suppress per-job progress lines")
	)
	fs.Parse(args)
	if *connect == "" {
		return die(fmt.Errorf("sweepd work: -connect is required"))
	}
	var progress *os.File
	if !*quiet {
		progress = os.Stderr
	}
	w := &sweepd.Worker{
		Dispatcher: sweepd.NewClient(*connect),
		Name:       *name,
		Slots:      *slots,
		Retries:    *retries,
		Progress:   progress,
	}
	if *metricsAddr != "" {
		l, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return die(err)
		}
		defer l.Close()
		mux := http.NewServeMux()
		mux.HandleFunc("GET /metrics", func(rw http.ResponseWriter, r *http.Request) {
			var pw prom.Writer
			w.WriteMetrics(&pw)
			rw.Header().Set("Content-Type", prom.ContentType)
			rw.Write(pw.Bytes())
		})
		go http.Serve(l, mux)
	}
	if err := w.Run(context.Background()); err != nil {
		return die(err)
	}
	fmt.Fprintln(os.Stderr, "sweepd: sweep complete, worker exiting")
	return 0
}

// statusCmd prints a coordinator's live status (-connect) or replays a
// finished sweep's record log (-out) for the same view offline.
func statusCmd(args []string) int {
	fs := flag.NewFlagSet("sweepd status", flag.ExitOnError)
	connect := fs.String("connect", "", "coordinator address (host:port or URL)")
	out := fs.String("out", "", "offline mode: replay records.log in this directory instead of contacting a coordinator")
	fs.Parse(args)
	switch {
	case *connect != "":
		st, err := sweepd.NewClient(*connect).Status()
		if err != nil {
			return die(err)
		}
		printStatus(st)
	case *out != "":
		st, err := offlineStatus(*out)
		if err != nil {
			return die(err)
		}
		printStatus(st)
	default:
		return die(fmt.Errorf("sweepd status: -connect or -out is required"))
	}
	return 0
}

// printStatus renders one status snapshot, including the fleet-wide
// merged FCT-slowdown summary per group when the sweep records
// histograms.
func printStatus(st *sweepd.Status) {
	fmt.Printf("sweep %q: %d jobs — %d pending, %d leased, %d done (%d failed)",
		st.Name, st.Jobs, st.Pending, st.Leased, st.Done, st.Failed)
	if st.Finished {
		fmt.Print("  [finished]")
	}
	fmt.Println()
	for _, g := range st.Groups {
		line := fmt.Sprintf("  %-40s %d/%d ok", g.Group, g.OK, g.Total)
		if g.Failed > 0 {
			line += fmt.Sprintf(", %d failed", g.Failed)
		}
		if g.RelCIHalfWidth > 0 {
			line += fmt.Sprintf(", rel-CI %.4f (mean %.4g)", g.RelCIHalfWidth, g.Mean)
		}
		if g.Settled {
			line += ", settled"
		}
		fmt.Println(line)
		if s := g.Slowdown; s != nil {
			fmt.Printf("  %-40s slowdown p50 %.3f  p99 %.3f  p999 %.3f  (%d flows)\n",
				"", s.P50, s.P99, s.P999, s.Count)
		}
	}
	if st.Batch != nil {
		fmt.Printf("  log: %d records in %d batches (max %d)\n",
			st.Batch.Records, st.Batch.Batches, st.Batch.MaxBatchLen)
	}
}

// offlineStatus rebuilds a status snapshot from a sweep's record log —
// the post-run path: the coordinator has exited, but its durable state
// answers the same questions.
func offlineStatus(dir string) (*sweepd.Status, error) {
	logPath := filepath.Join(dir, "records.log")
	recLog, err := sweepd.OpenFileLog(logPath)
	if err != nil {
		return nil, err
	}
	defer recLog.Close()
	recs, err := recLog.Replay()
	if err != nil {
		return nil, err
	}
	// Latest-entry-wins per job, like the resume path.
	latest := make(map[string]runner.Record)
	var order []string
	for _, rec := range recs {
		if _, seen := latest[rec.ID]; !seen {
			order = append(order, rec.ID)
		}
		latest[rec.ID] = rec
	}
	st := &sweepd.Status{Finished: true}
	byGroup := make(map[string][]runner.Record)
	var groupOrder []string
	for _, id := range order {
		rec := latest[id]
		if st.Name == "" && rec.Experiment != "" {
			st.Name = rec.Experiment
		}
		st.Jobs++
		st.Done++
		if !rec.OK() {
			st.Failed++
		}
		group := rec.Group
		if group == "" {
			group = rec.ID
		}
		if _, seen := byGroup[group]; !seen {
			groupOrder = append(groupOrder, group)
		}
		byGroup[group] = append(byGroup[group], rec)
	}
	sort.Strings(groupOrder)
	for _, group := range groupOrder {
		gs := sweepd.GroupStatus{Group: group, Settled: true}
		var ok []runner.Record
		for _, rec := range byGroup[group] {
			gs.Total++
			if rec.OK() {
				gs.OK++
				ok = append(ok, rec)
			} else {
				gs.Failed++
			}
		}
		gs.Slowdown = sweepd.SlowdownOf(ok)
		st.Groups = append(st.Groups, gs)
	}
	return st, nil
}

func die(err error) int {
	fmt.Fprintln(os.Stderr, err)
	return 2
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}

// varyAxes mirrors cmd/sweep's repeatable -vary flag.
type varyAxes []experiments.PathAxis

func (v *varyAxes) String() string {
	var parts []string
	for _, a := range *v {
		parts = append(parts, a.Path+"="+strings.Join(a.Values, ","))
	}
	return strings.Join(parts, " ")
}

func (v *varyAxes) Set(s string) error {
	path, vals, ok := strings.Cut(s, "=")
	if !ok || path == "" {
		return fmt.Errorf("want field.path=v1,v2,..., got %q", s)
	}
	values := splitCSV(vals)
	if len(values) == 0 {
		return fmt.Errorf("axis %q has no values", path)
	}
	*v = append(*v, experiments.PathAxis{Path: path, Values: values})
	return nil
}

func splitCSV(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func floatsCSV(s string) []float64 {
	var out []float64
	for _, f := range splitCSV(s) {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			fatal(fmt.Errorf("bad number %q: %w", f, err))
		}
		out = append(out, v)
	}
	return out
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
