// Command obsvalidate checks an NDJSON event trace produced by the
// telemetry layer (internal/obs, -trace-events) against its documented
// schema: every line is a JSON object, the kind is known, exactly the
// fields that kind emits are present with the right JSON types,
// verdicts come from the right enum, and timestamps never decrease
// (the export is the canonical merged order). It exits nonzero on the
// first file with violations, printing each offending line number —
// the CI smoke run pipes a fresh trace through it so a schema drift
// between the writer and the documentation fails the build.
//
// With -metrics it instead lints Prometheus text-format exposition
// (what /metrics serves): every sample must follow its family's # TYPE
// line, histogram buckets must be cumulative with a +Inf bucket
// matching _count, and -require lists families that must be present.
//
// Usage:
//
//	obsvalidate trace.ndjson [more.ndjson ...]
//	abmsim -trace-events /dev/stdout ... | obsvalidate -
//	curl -s localhost:9100/metrics | obsvalidate -metrics -require abm_sweepd_jobs -
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

// fieldsByKind is the exact field set each kind emits, beyond the
// common "t" and "kind". Mirrors obs.WriteNDJSON (pinned there by
// TestWriteNDJSONGolden).
var fieldsByKind = map[string][]string{
	"admit": {"node", "port", "prio", "flow", "seq", "size", "qlen",
		"free", "thresh", "alpha", "mu_b", "ncong", "unsched", "verdict"},
	"enqueue":        {"node", "port", "prio", "flow", "seq", "size", "qlen"},
	"dequeue":        {"node", "port", "prio", "flow", "seq", "size", "qlen", "sojourn_ps", "verdict"},
	"mark":           {"node", "port", "prio", "flow", "seq", "size", "qlen"},
	"timeout":        {"node", "flow", "seq", "rto_ps", "cwnd"},
	"cwndcut":        {"node", "flow", "cwnd"},
	"hybrid-demote":  {"node", "flow", "seq", "cwnd", "rate"},
	"hybrid-promote": {"node", "flow", "seq", "cwnd", "fluid_bytes"},
	"window":         {"shard", "dur_ps", "events", "wall_ns"},
	"barrier":        {"shards", "wall_ns"},
	"hist":           {"name", "unit", "count", "sum", "buckets"},
}

var verdictsByKind = map[string]map[string]bool{
	"admit": {"admit": true, "admit-mark": true, "drop-threshold": true,
		"drop-nobuffer": true, "drop-aqm": true, "drop-afd": true},
	"dequeue": {"tx": true, "drop-dequeue": true},
}

func main() {
	fs := flag.NewFlagSet("obsvalidate", flag.ExitOnError)
	metricsMode := fs.Bool("metrics", false, "lint Prometheus text-format exposition instead of NDJSON traces")
	require := fs.String("require", "", "comma-separated metric families that must be present (-metrics only)")
	fs.Parse(os.Args[1:])
	paths := fs.Args()
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "usage: obsvalidate [-metrics [-require fam,...]] <file ...|->")
		os.Exit(2)
	}
	var required []string
	for _, fam := range strings.Split(*require, ",") {
		if fam = strings.TrimSpace(fam); fam != "" {
			required = append(required, fam)
		}
	}
	exit := 0
	for _, path := range paths {
		r := io.Reader(os.Stdin)
		name := "stdin"
		if path != "-" {
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			defer f.Close()
			r, name = f, path
		}
		var lines, errs int
		what := "events"
		if *metricsMode {
			lines, errs = validateMetrics(r, os.Stderr, name, required)
			what = "metric lines"
		} else {
			lines, errs = validate(r, os.Stderr, name)
		}
		if errs > 0 {
			fmt.Fprintf(os.Stderr, "%s: %d violations in %d lines\n", name, errs, lines)
			exit = 1
		} else {
			fmt.Printf("%s: %d %s ok\n", name, lines, what)
		}
	}
	os.Exit(exit)
}

// validate checks one stream, reporting every violation to w; it
// returns the line count and the violation count.
func validate(r io.Reader, w io.Writer, name string) (lines, errs int) {
	const maxReported = 20
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	lastT := int64(-1 << 62)
	report := func(line int, format string, args ...any) {
		errs++
		if errs == maxReported+1 {
			fmt.Fprintf(w, "%s: ... further violations suppressed\n", name)
		}
		if errs <= maxReported {
			fmt.Fprintf(w, "%s:%d: %s\n", name, line, fmt.Sprintf(format, args...))
		}
	}
	for sc.Scan() {
		lines++
		var obj map[string]json.RawMessage
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			report(lines, "not a JSON object: %v", err)
			continue
		}
		var kind string
		if raw, ok := obj["kind"]; !ok || json.Unmarshal(raw, &kind) != nil {
			report(lines, "missing or non-string \"kind\"")
			continue
		}
		want, ok := fieldsByKind[kind]
		if !ok {
			report(lines, "unknown kind %q", kind)
			continue
		}
		var t int64
		if raw, ok := obj["t"]; !ok || json.Unmarshal(raw, &t) != nil {
			report(lines, "%s: missing or non-integer \"t\"", kind)
			continue
		}
		if t < lastT {
			report(lines, "%s: timestamp went backwards (%d after %d)", kind, t, lastT)
		}
		lastT = t
		for _, f := range want {
			raw, ok := obj[f]
			if !ok {
				report(lines, "%s: missing field %q", kind, f)
				continue
			}
			if !typeOK(f, raw) {
				report(lines, "%s: field %q has the wrong JSON type: %s", kind, f, raw)
			}
		}
		if len(obj) != len(want)+2 { // + t, kind
			for f := range obj {
				if f == "t" || f == "kind" {
					continue
				}
				known := false
				for _, g := range want {
					if f == g {
						known = true
						break
					}
				}
				if !known {
					report(lines, "%s: unexpected field %q", kind, f)
				}
			}
		}
		if allowed, checked := verdictsByKind[kind]; checked {
			var v string
			if json.Unmarshal(obj["verdict"], &v) == nil && !allowed[v] {
				report(lines, "%s: verdict %q not in the %s enum", kind, v, kind)
			}
		}
	}
	if err := sc.Err(); err != nil {
		report(lines, "read: %v", err)
	}
	return lines, errs
}

// typeOK checks a field's JSON type: verdicts, names and units are
// strings, unsched is a bool, alpha and mu_b are numbers, buckets is a
// sparse [[index, count], ...] array with ascending indexes and
// positive counts, everything else must be an integer.
func typeOK(field string, raw json.RawMessage) bool {
	switch field {
	case "verdict", "name", "unit":
		var s string
		return json.Unmarshal(raw, &s) == nil
	case "unsched":
		var b bool
		return json.Unmarshal(raw, &b) == nil
	case "alpha", "mu_b":
		var f float64
		return json.Unmarshal(raw, &f) == nil
	case "buckets":
		var pairs [][2]int64
		if json.Unmarshal(raw, &pairs) != nil {
			return false
		}
		last := int64(-1)
		for _, p := range pairs {
			if p[0] <= last || p[1] <= 0 {
				return false
			}
			last = p[0]
		}
		return true
	default:
		var n int64
		return json.Unmarshal(raw, &n) == nil
	}
}
