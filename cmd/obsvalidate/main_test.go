package main

import (
	"io"
	"strings"
	"testing"

	"abm/internal/obs/hist"
	"abm/internal/obs/prom"
)

// TestValidateAcceptsHybridKinds pins the schema for the hybrid
// engine's demote/promote events: a trace holding them must validate
// clean (a regression here would fail the CI smoke run on every hybrid
// trace).
func TestValidateAcceptsHybridKinds(t *testing.T) {
	trace := strings.Join([]string{
		`{"t":10,"kind":"hybrid-demote","node":3,"flow":7,"seq":1200,"cwnd":40000,"rate":900000}`,
		`{"t":20,"kind":"hybrid-promote","node":3,"flow":7,"seq":2400,"cwnd":40000,"fluid_bytes":123456}`,
	}, "\n")
	lines, errs := validate(strings.NewReader(trace), io.Discard, "test")
	if lines != 2 || errs != 0 {
		t.Fatalf("validate(hybrid trace) = %d lines, %d violations; want 2, 0", lines, errs)
	}
}

// TestValidateHistKind covers the histogram-snapshot record kind: a
// well-formed line passes, a bucket list out of order or with a
// non-positive count fails.
func TestValidateHistKind(t *testing.T) {
	good := `{"t":1000,"kind":"hist","name":"fct_slowdown_websearch","unit":"milli","count":5,"sum":9000,"buckets":[[3,2],[17,3]]}`
	if lines, errs := validate(strings.NewReader(good), io.Discard, "t"); lines != 1 || errs != 0 {
		t.Fatalf("good hist line: %d lines, %d violations; want 1, 0", lines, errs)
	}
	for name, bad := range map[string]string{
		"unordered buckets": `{"t":1,"kind":"hist","name":"x","unit":"ps","count":2,"sum":3,"buckets":[[5,1],[3,1]]}`,
		"zero count":        `{"t":1,"kind":"hist","name":"x","unit":"ps","count":2,"sum":3,"buckets":[[5,0]]}`,
		"missing unit":      `{"t":1,"kind":"hist","name":"x","count":2,"sum":3,"buckets":[[5,2]]}`,
	} {
		if _, errs := validate(strings.NewReader(bad), io.Discard, "t"); errs == 0 {
			t.Errorf("%s: validate accepted %s", name, bad)
		}
	}
}

// TestValidateMetrics lints a real prom.Writer exposition and then
// variants that must fail: a sample with no TYPE line, a histogram
// whose +Inf bucket disagrees with _count, and a missing required
// family.
func TestValidateMetrics(t *testing.T) {
	var h hist.Histogram
	for v := int64(1); v <= 100; v++ {
		h.Record(v)
	}
	var w prom.Writer
	w.Family("abm_test_seconds", "histogram", "Test histogram.")
	w.Histogram("abm_test_seconds", []prom.Label{{Name: "class", Value: "ws"}}, h.Snapshot(), 1)
	w.Family("abm_test_jobs", "gauge", "Test gauge.")
	w.IntSample("abm_test_jobs", []prom.Label{{Name: "state", Value: "done"}}, 4)
	text := string(w.Bytes())

	if lines, errs := validateMetrics(strings.NewReader(text), io.Discard, "t", []string{"abm_test_seconds", "abm_test_jobs"}); errs != 0 {
		t.Fatalf("clean exposition: %d violations in %d lines", errs, lines)
	}
	if _, errs := validateMetrics(strings.NewReader(text), io.Discard, "t", []string{"abm_absent"}); errs == 0 {
		t.Error("missing required family not reported")
	}
	untyped := strings.ReplaceAll(text, "# TYPE abm_test_jobs gauge\n", "")
	if _, errs := validateMetrics(strings.NewReader(untyped), io.Discard, "t", nil); errs == 0 {
		t.Error("sample without # TYPE not reported")
	}
	skewed := strings.ReplaceAll(text, `abm_test_seconds_count{class="ws"} 100`, `abm_test_seconds_count{class="ws"} 101`)
	if _, errs := validateMetrics(strings.NewReader(skewed), io.Discard, "t", nil); errs == 0 {
		t.Error("+Inf/_count mismatch not reported")
	}
}
