package main

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// validateMetrics lints one Prometheus text-format exposition: comments
// and samples must parse, every sample needs a preceding # TYPE line
// for its family, histogram bucket series must be cumulative in le with
// a +Inf bucket equal to the series' _count, and every family in
// require must appear. Returns the line count and violation count.
func validateMetrics(r io.Reader, w io.Writer, name string, require []string) (lines, errs int) {
	const maxReported = 20
	report := func(line int, format string, args ...any) {
		errs++
		if errs == maxReported+1 {
			fmt.Fprintf(w, "%s: ... further violations suppressed\n", name)
		}
		if errs <= maxReported {
			fmt.Fprintf(w, "%s:%d: %s\n", name, line, fmt.Sprintf(format, args...))
		}
	}

	typed := make(map[string]string) // family -> declared type
	// Histogram bucket/count series keyed by family + labels minus le.
	type bucketPoint struct {
		le, v float64
		line  int
	}
	buckets := make(map[string][]bucketPoint)
	counts := make(map[string]float64)

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		lines++
		line := strings.TrimRight(sc.Text(), "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				report(lines, "malformed comment line: %s", line)
				continue
			}
			if fields[1] == "TYPE" {
				if len(fields) < 4 {
					report(lines, "TYPE line without a type: %s", line)
					continue
				}
				typ := fields[3]
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					report(lines, "unknown metric type %q", typ)
				}
				if _, dup := typed[fields[2]]; dup {
					report(lines, "duplicate # TYPE for family %q", fields[2])
				}
				typed[fields[2]] = typ
			}
			continue
		}
		mname, labels, value, err := parseSample(line)
		if err != nil {
			report(lines, "%v", err)
			continue
		}
		fam, suffix := familyOf(mname, typed)
		if fam == "" {
			report(lines, "sample %q has no preceding # TYPE line", mname)
			continue
		}
		if typed[fam] == "histogram" {
			key := fam + "\x00" + labelKey(labels, "le")
			switch suffix {
			case "_bucket":
				le, ok := labels["le"]
				if !ok {
					report(lines, "%s_bucket without an le label", fam)
					continue
				}
				bound, err := parseLe(le)
				if err != nil {
					report(lines, "%s_bucket: bad le %q", fam, le)
					continue
				}
				buckets[key] = append(buckets[key], bucketPoint{le: bound, v: value, line: lines})
			case "_count":
				counts[key] = value
			case "_sum", "":
			}
		}
	}
	if err := sc.Err(); err != nil {
		report(lines, "read: %v", err)
	}

	keys := make([]string, 0, len(buckets))
	for key := range buckets {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		fam := key[:strings.IndexByte(key, '\x00')]
		pts := buckets[key]
		hasInf := false
		for i, p := range pts {
			if i > 0 && p.le <= pts[i-1].le {
				report(p.line, "%s: le buckets out of order (%g after %g)", fam, p.le, pts[i-1].le)
			}
			if i > 0 && p.v < pts[i-1].v {
				report(p.line, "%s: cumulative bucket count decreased (%g after %g)", fam, p.v, pts[i-1].v)
			}
			if math.IsInf(p.le, +1) {
				hasInf = true
				if c, ok := counts[key]; ok && p.v != c {
					report(p.line, "%s: +Inf bucket %g != _count %g", fam, p.v, c)
				}
			}
		}
		if !hasInf {
			report(pts[len(pts)-1].line, "%s: histogram series has no +Inf bucket", fam)
		}
	}
	for _, fam := range require {
		if _, ok := typed[fam]; !ok {
			report(lines, "required family %q absent", fam)
		}
	}
	return lines, errs
}

// familyOf maps a sample name to its # TYPE'd family: histogram samples
// carry a _bucket/_sum/_count suffix on the family name, everything
// else matches exactly.
func familyOf(mname string, typed map[string]string) (fam, suffix string) {
	if _, ok := typed[mname]; ok {
		return mname, ""
	}
	for _, s := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(mname, s)
		if base != mname && typed[base] == "histogram" {
			return base, s
		}
	}
	return "", ""
}

// parseSample splits one sample line into name, labels and value.
func parseSample(line string) (mname string, labels map[string]string, value float64, err error) {
	rest := line
	if i := strings.IndexAny(rest, "{ "); i >= 0 && rest[i] == '{' {
		mname = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return "", nil, 0, fmt.Errorf("unterminated label set: %s", line)
		}
		labels, err = parseLabels(rest[i+1 : end])
		if err != nil {
			return "", nil, 0, fmt.Errorf("%v in: %s", err, line)
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.SplitN(rest, " ", 2)
		if len(fields) != 2 {
			return "", nil, 0, fmt.Errorf("sample line without a value: %s", line)
		}
		mname, rest = fields[0], strings.TrimSpace(fields[1])
	}
	// A timestamp may follow the value; only the value is checked.
	valueField := strings.Fields(rest)
	if len(valueField) == 0 {
		return "", nil, 0, fmt.Errorf("sample line without a value: %s", line)
	}
	value, err = strconv.ParseFloat(valueField[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad sample value %q", valueField[0])
	}
	return mname, labels, value, nil
}

// parseLabels parses the inside of a {label="value",...} set, honoring
// the \\, \" and \n escapes the format defines.
func parseLabels(s string) (map[string]string, error) {
	labels := make(map[string]string)
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label without '='")
		}
		lname := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("label %q value not quoted", lname)
		}
		s = s[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			switch s[i] {
			case '\\':
				if i+1 >= len(s) {
					return nil, fmt.Errorf("label %q: dangling escape", lname)
				}
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(s[i])
				}
			case '"':
				labels[lname] = val.String()
				s = strings.TrimPrefix(strings.TrimSpace(s[i+1:]), ",")
				s = strings.TrimSpace(s)
				closed = true
			default:
				val.WriteByte(s[i])
			}
			if closed {
				break
			}
		}
		if !closed {
			return nil, fmt.Errorf("label %q: unterminated value", lname)
		}
	}
	return labels, nil
}

// labelKey canonicalizes a label set (minus one excluded label) so
// samples of the same series compare equal regardless of label order.
func labelKey(labels map[string]string, exclude string) string {
	pairs := make([]string, 0, len(labels))
	for k, v := range labels {
		if k == exclude {
			continue
		}
		pairs = append(pairs, k+"="+v)
	}
	sort.Strings(pairs)
	return strings.Join(pairs, ",")
}

// parseLe resolves an le label to its bound; "+Inf" is positive
// infinity.
func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(+1), nil
	}
	return strconv.ParseFloat(s, 64)
}
