// Command figures regenerates the paper's evaluation tables: one TSV
// per figure (4 through 12, plus the ablation and alpha-sensitivity
// extras), written to stdout or a directory. Execution rides on
// internal/runner: figures are jobs on a worker pool with panic
// isolation and progress reporting, and with -out every simulated cell
// additionally lands as one JSON record under <out>/jobs/ with a
// manifest (the runner Store schema shared with cmd/sweep).
//
// Profiling: -cpuprofile, -memprofile and -trace capture the run for
// performance work on the simulator core (see DESIGN.md, "Event engine
// internals").
//
// Examples:
//
//	figures -fig fig6 -scale medium
//	figures -fig all -scale small -out results/ -workers 4
//	figures -fig fig6 -scale small -cpuprofile cpu.out
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"abm/internal/experiments"
	"abm/internal/obs"
	"abm/internal/prof"
	"abm/internal/runner"
	"abm/internal/scenario"
)

func main() { os.Exit(run()) }

// run is main's body with normal control flow, so deferred profile
// writers fire on every exit path.
func run() int {
	var (
		fig     = flag.String("fig", "all", "figure id (fig4..fig12, ablation, alphasweep) or 'all'")
		scale   = flag.String("scale", "small", "fabric scale: small, medium, paper")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("out", "", "output directory (default: stdout, figures sequential)")
		workers = flag.Int("workers", runtime.NumCPU(), "parallel figure workers (with -out)")
		shards  = flag.Int("shards", 0, "simulation shards per cell (0 = serial loop; >=1 runs the parallel engine, clamped to the fabric's leaf count)")
		noJSON  = flag.Bool("no-json", false, "with -out, skip the per-cell JSON record store")
		scn     = flag.String("scenario", "", "overlay this scenario file's fabric shape (dimensions, link rates, delay) onto every cell; -scale still picks durations")
		pf      prof.Flags
		of      obs.Flags
	)
	pf.AddFlags()
	of.AddFlags(true)
	flag.Parse()

	obsOpts, err := of.Validate()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	stopProf, err := pf.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	defer stopProf()

	sc, err := experiments.ParseScale(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	var fabric *scenario.Fabric
	if *scn != "" {
		s, err := scenario.Load(*scn)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		fabric = &s.Fabric
	}

	ids := []string{*fig}
	if *fig == "all" {
		ids = experiments.FigureIDs
	}

	if *out == "" {
		// Stdout mode: figures render sequentially (their tables would
		// interleave otherwise); each figure's cells still run in
		// parallel on the pool.
		for _, id := range ids {
			opts := &experiments.RunOptions{Shards: *shards, Obs: obsOpts, Fabric: fabric}
			if err := experiments.RunFigureOpts(opts, id, sc, *seed, os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		}
		return 0
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var store *runner.Store
	if !*noJSON {
		store, err = runner.OpenStore(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer store.Close()
	}

	// One pool job per figure; each figure's cells run on its own inner
	// pool with one worker, so total parallelism stays at -workers and
	// per-cell JSON records land in the shared store as they complete.
	plan := &runner.Plan{Name: "figures"}
	for _, id := range ids {
		id := id
		plan.Add(runner.Spec{
			ID:         "figures/" + id,
			Experiment: id,
			Seed:       *seed,
			Run: func(_ context.Context, _ int64) (runner.Result, error) {
				opts := &experiments.RunOptions{Workers: 1, Shards: *shards, Store: store, Obs: obsOpts, Fabric: fabric}
				f, err := os.Create(filepath.Join(*out, id+".tsv"))
				if err != nil {
					return runner.Result{}, err
				}
				err = experiments.RunFigureOpts(opts, id, sc, *seed, f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
				return runner.Result{}, err
			},
		})
	}
	// Each figure job runs its cells one at a time (inner Workers: 1),
	// so a figure's goroutine footprint is its shard count; the outer
	// pool caps figure-level parallelism accordingly.
	pool := &runner.Pool{Workers: *workers, JobShards: *shards, Progress: os.Stderr}
	records, err := pool.Run(context.Background(), plan)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	failed := runner.Failed(records)
	for _, rec := range records {
		if rec.OK() {
			fmt.Printf("%s written in %.1fs\n", rec.Experiment, rec.WallMS/1e3)
		} else {
			fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", rec.Experiment, rec.Error, rec.Status)
		}
	}
	if len(failed) > 0 {
		return 1
	}
	return 0
}
