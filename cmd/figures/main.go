// Command figures regenerates the paper's evaluation tables: one TSV
// per figure (4 through 12, plus the ablation and alpha-sensitivity
// extras), written to stdout or a directory. With -out, figures run in
// parallel across workers.
//
// Examples:
//
//	figures -fig fig6 -scale medium
//	figures -fig all -scale small -out results/ -workers 4
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"abm"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure id (fig4..fig12, ablation, alphasweep) or 'all'")
		scale   = flag.String("scale", "small", "fabric scale: small, medium, paper")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("out", "", "output directory (default: stdout, sequential)")
		workers = flag.Int("workers", runtime.NumCPU(), "parallel figure workers (with -out)")
	)
	flag.Parse()

	sc, err := abm.ParseScale(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	ids := []string{*fig}
	if *fig == "all" {
		ids = abm.FigureIDs()
	}

	if *out == "" {
		for _, id := range ids {
			if err := abm.RunFigure(id, sc, *seed, os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		return
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *workers < 1 {
		*workers = 1
	}
	jobs := make(chan string)
	var wg sync.WaitGroup
	var mu sync.Mutex
	failed := false
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := range jobs {
				start := time.Now()
				f, err := os.Create(filepath.Join(*out, id+".tsv"))
				if err == nil {
					err = abm.RunFigure(id, sc, *seed, f)
					if cerr := f.Close(); err == nil {
						err = cerr
					}
				}
				mu.Lock()
				if err != nil {
					fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
					failed = true
				} else {
					fmt.Printf("%s written in %.1fs\n", id, time.Since(start).Seconds())
				}
				mu.Unlock()
			}
		}()
	}
	for _, id := range ids {
		jobs <- id
	}
	close(jobs)
	wg.Wait()
	if failed {
		os.Exit(1)
	}
}
