package abm_test

import (
	"fmt"

	"abm"
)

// The closed-form isolation bounds (Theorems 1-3) for a 5 MB buffer
// shared by two priorities with alpha = 0.5 at 10 Gb/s ports.
func Example_theoremBounds() {
	b := 5 * abm.Megabyte
	fmt.Println("min guarantee:", abm.ABMMinGuarantee(b, 0.5, 1.0))
	fmt.Println("max allocation:", abm.ABMMaxAllocation(b, 0.5))
	fmt.Println("drain bound:", abm.ABMDrainTimeBound(b, 0.5, 10*abm.GigabitPerSec))
	// Output:
	// min guarantee: 1.25MB
	// max allocation: 1.67MB
	// drain bound: 1.333ms
}

// Dynamic Thresholds' steady state (Eq. 6): the per-queue threshold
// collapses as congestion spreads.
func ExampleDTSteadyThreshold() {
	b := 5 * abm.Megabyte
	for _, n := range []int{1, 4, 16} {
		thr := abm.DTSteadyThreshold(b, 0.5, []abm.PriorityLoad{{Alpha: 0.5, Congested: n}})
		fmt.Printf("n=%d: %v\n", n, thr)
	}
	// Output:
	// n=1: 1.67MB
	// n=4: 833.33KB
	// n=16: 277.78KB
}

// Burst tolerance (Figure 5): DT's shrinks with background congestion,
// ABM's does not.
func ExampleBurstScenario() {
	s := abm.BurstScenario{
		B:          5 * abm.Megabyte,
		PortRate:   10 * abm.GigabitPerSec,
		Alpha:      0.5,
		AlphaBurst: 64,
		BurstRate:  150 * abm.GigabitPerSec,

		CongestedPorts: 12,
		QueuesPerPort:  4,
	}
	fmt.Println("DT: ", s.DTBurstTolerance())
	fmt.Println("ABM:", s.ABMBurstTolerance())
	// Output:
	// DT:  254.09KB
	// ABM: 3.28MB
}
